"""Simulator scaling benchmark: columnar vs object trace backends.

Measures the end-to-end cost (synthetic trace build + engine replay)
of a node/contact scaling curve from 10k to 1M contacts under both
trace backends, and persists the measurements to
``benchmarks/results/BENCH_sim.json`` so regressions are mechanically
checkable.

Two separate passes per cell:

* **timing pass** — wall-clock, with tracemalloc *off* (tracing hooks
  every allocation and would inflate the object backend's numbers by
  5–10x, unfairly flattering the columnar backend);
* **memory pass** — tracemalloc, with the peak reset between the build
  and replay phases.  The headline memory number is the replay-phase
  peak *with the trace resident* — the steady-state working set of a
  replay — recorded alongside the build-phase peak for transparency.

Replay uses :class:`repro.dtn.PassiveProtocol` (pure engine
accounting), so the curve measures the engine, not protocol logic; a
per-cell equivalence check asserts both backends produce the same
:class:`SimulationReport`.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_simulator.py           # full curve
    PYTHONPATH=src python benchmarks/bench_simulator.py --smoke   # CI quick mode

or through pytest (smoke cell only)::

    PYTHONPATH=src python -m pytest benchmarks/bench_simulator.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import tracemalloc
from pathlib import Path
from typing import Dict, List, Optional

from repro.dtn import PassiveProtocol, Simulation
from repro.traces import FLAT_PROFILE, SyntheticTraceConfig, generate_trace
from repro.traces.backends import TRACE_BACKEND_ENV_VAR, TRACE_BACKENDS

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_sim.json"

#: The headline acceptance thresholds at the largest cell.
REQUIRED_SPEEDUP = 4.0
REQUIRED_MEMORY_RATIO = 4.0

#: (label, target contacts, nodes) — the node count grows with the
#: contact count so the curve exercises both axes.  Targets are
#: pre-merge Poisson targets: overlapping per-pair draws coalesce
#: (two devices cannot be in contact twice at once), so each target is
#: chosen to land the *merged* contact count near its label — the 1M
#: cell replays ~0.96M contacts.
FULL_CELLS = [
    ("10k", 10_000, 60),
    ("100k", 120_000, 80),
    ("1M", 1_700_000, 100),
]
SMOKE_CELLS = [("10k", 10_000, 60)]


def _bench_config(target_contacts: int, num_nodes: int) -> SyntheticTraceConfig:
    return SyntheticTraceConfig(
        num_nodes=num_nodes,
        duration_days=3.0,
        target_contacts=target_contacts,
        num_communities=4,
        intra_community_boost=3.0,
        activity_sigma=0.6,
        profile=FLAT_PROFILE,
        seed=7,
        name=f"bench-{target_contacts}c-{num_nodes}n",
    )


def _build(config: SyntheticTraceConfig, backend: str):
    previous = os.environ.get(TRACE_BACKEND_ENV_VAR)
    os.environ[TRACE_BACKEND_ENV_VAR] = backend
    try:
        return generate_trace(config)
    finally:
        if previous is None:
            os.environ.pop(TRACE_BACKEND_ENV_VAR, None)
        else:
            os.environ[TRACE_BACKEND_ENV_VAR] = previous


def _replay(trace):
    return Simulation(trace, PassiveProtocol()).run()


def _report_fingerprint(report) -> tuple:
    return (
        report.num_contacts,
        report.channels_exhausted,
        report.end_time,
        dict(report.contacts_by_node),
        report.bytes_transferred,
        report.refused_transfers,
    )


def _measure_backend(
    config: SyntheticTraceConfig, backend: str, measure_memory: bool,
    timing_rounds: int = 1,
):
    """One backend, one cell: timing pass, then optional memory pass.

    Small cells are timed over several rounds (best-of, the standard
    estimator for minimum achievable cost) because their absolute times
    sit close to scheduler noise.
    """
    best_build = best_replay = best_e2e = None
    trace = report = None
    for _ in range(max(1, timing_rounds)):
        del trace, report
        t0 = time.perf_counter()
        trace = _build(config, backend)
        t1 = time.perf_counter()
        report = _replay(trace)
        t2 = time.perf_counter()
        if best_e2e is None or t2 - t0 < best_e2e:
            best_build, best_replay, best_e2e = t1 - t0, t2 - t1, t2 - t0
    result = {
        "num_contacts": trace.num_contacts,
        "num_nodes": trace.num_nodes,
        "build_s": best_build,
        "replay_s": best_replay,
        "end_to_end_s": best_e2e,
    }
    fingerprint = _report_fingerprint(report)
    del trace, report

    if measure_memory:
        tracemalloc.start()
        try:
            base_current, _ = tracemalloc.get_traced_memory()
            trace = _build(config, backend)
            built_current, build_peak = tracemalloc.get_traced_memory()
            tracemalloc.reset_peak()
            _replay(trace)
            _, replay_peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        result["trace_resident_bytes"] = built_current - base_current
        result["build_peak_bytes"] = build_peak - base_current
        result["replay_peak_bytes"] = replay_peak - base_current
        del trace
    return result, fingerprint


def run_cell(
    label: str,
    target_contacts: int,
    num_nodes: int,
    measure_memory: bool = True,
    log=print,
) -> Dict:
    """Measure one scaling cell under every trace backend."""
    config = _bench_config(target_contacts, num_nodes)
    cell: Dict = {
        "label": label,
        "target_contacts": target_contacts,
        "num_nodes": num_nodes,
        "backends": {},
    }
    timing_rounds = 3 if target_contacts < 500_000 else 1
    fingerprints = {}
    for backend in TRACE_BACKENDS:
        log(f"  [{label}] backend={backend} ...")
        measured, fingerprint = _measure_backend(
            config, backend, measure_memory, timing_rounds=timing_rounds
        )
        cell["backends"][backend] = measured
        fingerprints[backend] = fingerprint
    for backend, fingerprint in fingerprints.items():
        if fingerprint != fingerprints["object"]:
            raise AssertionError(
                f"cell {label}: {backend} disagrees with object on the "
                f"simulation report"
            )
    obj = cell["backends"]["object"]
    col = cell["backends"]["columnar"]
    cell["speedup_end_to_end"] = obj["end_to_end_s"] / col["end_to_end_s"]
    cell["speedup_replay"] = obj["replay_s"] / col["replay_s"]
    if measure_memory:
        cell["replay_peak_ratio"] = (
            obj["replay_peak_bytes"] / col["replay_peak_bytes"]
        )
        cell["trace_resident_ratio"] = (
            obj["trace_resident_bytes"] / col["trace_resident_bytes"]
        )
    log(
        f"  [{label}] contacts={obj['num_contacts']} "
        f"e2e object={obj['end_to_end_s']:.3f}s "
        f"columnar={col['end_to_end_s']:.3f}s "
        f"speedup={cell['speedup_end_to_end']:.2f}x"
        + (
            f" replay-peak ratio={cell['replay_peak_ratio']:.2f}x"
            if measure_memory
            else ""
        )
    )
    return cell


def run_benchmark(
    smoke: bool = False,
    out_path: Optional[Path] = RESULTS_PATH,
    log=print,
) -> Dict:
    cells_spec = SMOKE_CELLS if smoke else FULL_CELLS
    cells: List[Dict] = []
    for label, contacts, nodes in cells_spec:
        cells.append(run_cell(label, contacts, nodes, log=log))
    document = {
        "mode": "smoke" if smoke else "full",
        "required_speedup_end_to_end": REQUIRED_SPEEDUP,
        "required_replay_peak_ratio": REQUIRED_MEMORY_RATIO,
        "notes": {
            "timing": "wall-clock seconds, tracemalloc off",
            "memory": (
                "tracemalloc bytes; replay_peak_bytes is the peak during "
                "replay with the trace resident (steady-state working set)"
            ),
            "replay": "PassiveProtocol (engine accounting only)",
        },
        "cells": cells,
    }
    headline = cells[-1]
    document["headline"] = {
        "cell": headline["label"],
        "speedup_end_to_end": headline["speedup_end_to_end"],
        "replay_peak_ratio": headline.get("replay_peak_ratio"),
    }
    if out_path is not None:
        out_path.parent.mkdir(exist_ok=True)
        out_path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        log(f"wrote {out_path}")
    return document


def check_thresholds(document: Dict) -> List[str]:
    """Threshold failures for a *full* benchmark document ([] = pass)."""
    headline = document["headline"]
    failures = []
    if headline["speedup_end_to_end"] < document["required_speedup_end_to_end"]:
        failures.append(
            f"end-to-end speedup {headline['speedup_end_to_end']:.2f}x "
            f"< required {document['required_speedup_end_to_end']}x"
        )
    ratio = headline.get("replay_peak_ratio")
    if ratio is not None and ratio < document["required_replay_peak_ratio"]:
        failures.append(
            f"replay peak-memory ratio {ratio:.2f}x "
            f"< required {document['required_replay_peak_ratio']}x"
        )
    return failures


# -- pytest entry point (smoke cell only; asserts backend equivalence) ----


def test_bench_simulator_smoke():
    document = run_benchmark(smoke=True, out_path=None)
    cell = document["cells"][0]
    assert cell["backends"]["object"]["num_contacts"] > 0
    # At smoke scale the end-to-end time is dominated by the shared
    # generation arithmetic, so only the backend-sensitive phases are
    # asserted; the 4x thresholds are enforced on the full 1M run.
    assert cell["speedup_replay"] > 1.0
    assert cell["replay_peak_ratio"] > 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="quick mode: smallest cell only, no threshold enforcement",
    )
    parser.add_argument(
        "--out", type=Path, default=RESULTS_PATH,
        help=f"output JSON path (default: {RESULTS_PATH})",
    )
    args = parser.parse_args(argv)
    document = run_benchmark(smoke=args.smoke, out_path=args.out)
    if not args.smoke:
        failures = check_thresholds(document)
        for failure in failures:
            print(f"THRESHOLD FAILURE: {failure}", file=sys.stderr)
        if failures:
            return 1
    headline = document["headline"]
    print(
        f"headline [{headline['cell']}]: "
        f"{headline['speedup_end_to_end']:.2f}x end-to-end, "
        f"{headline['replay_peak_ratio']:.2f}x lower replay peak memory"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
