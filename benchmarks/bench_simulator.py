"""Engine throughput — contacts per second of simulated replay.

Not a paper artefact, but the number that bounds every other bench:
how fast the trace-driven engine plus each protocol chews through
contact events.  Useful as a performance-regression tripwire.
"""

import pytest

from repro.experiments.runner import run_experiment

from .conftest import bench_config


@pytest.mark.parametrize("protocol", ["PUSH", "B-SUB", "PULL"])
def test_engine_throughput(benchmark, haggle_trace, protocol):
    config = bench_config(ttl_min=300.0)

    def replay():
        return run_experiment(haggle_trace, protocol, config)

    result = benchmark.pedantic(replay, rounds=1, iterations=1)
    contacts_per_s = haggle_trace.num_contacts / max(
        benchmark.stats.stats.mean, 1e-9
    )
    benchmark.extra_info["contacts_per_second"] = round(contacts_per_s)
    benchmark.extra_info["contacts"] = haggle_trace.num_contacts
    assert result.engine.num_contacts == haggle_trace.num_contacts
    # a laptop should replay at least a few hundred contacts/second
    assert contacts_per_s > 100
