"""Buffer-capacity ablation — memory pressure on epidemic vs B-SUB.

The paper motivates B-SUB with the memory limits of human-carried
devices (Sec. I) but simulates unbounded buffers.  This ablation bounds
them: PUSH must buffer *everything* it floods, while B-SUB's brokers
only buffer ℂ-limited relayed copies — so shrinking buffers should hurt
PUSH's delivery ratio much more than B-SUB's.
"""

import pytest

from repro.experiments.report import format_table
from repro.experiments.runner import run_experiment

from .conftest import bench_config, emit

CAPACITIES = (None, 200, 50, 10)


def _run_grid(trace):
    config = bench_config(ttl_min=600.0)
    grid = {}
    for capacity in CAPACITIES:
        push_cfg = bench_config(ttl_min=600.0, push_buffer_capacity=capacity)
        bsub_cfg = bench_config(ttl_min=600.0, carried_capacity=capacity)
        grid[capacity] = (
            run_experiment(trace, "PUSH", push_cfg),
            run_experiment(trace, "B-SUB", bsub_cfg),
        )
    return grid


def test_buffer_capacity_ablation(benchmark, haggle_trace):
    grid = benchmark.pedantic(
        lambda: _run_grid(haggle_trace), rounds=1, iterations=1
    )
    rows = []
    for capacity, (push, bsub) in grid.items():
        rows.append(
            [
                "unbounded" if capacity is None else capacity,
                push.summary.delivery_ratio,
                bsub.summary.delivery_ratio,
            ]
        )
    emit(
        "ablation_buffers",
        format_table(
            ["buffer capacity (msgs)", "PUSH delivery", "B-SUB delivery"],
            rows,
            title="Ablation — bounded buffers (drop-oldest)",
        ),
    )

    unbounded_push, unbounded_bsub = grid[None]
    tight_push, tight_bsub = grid[10]
    push_loss = 1 - (
        tight_push.summary.delivery_ratio
        / unbounded_push.summary.delivery_ratio
    )
    bsub_loss = 1 - (
        tight_bsub.summary.delivery_ratio
        / max(unbounded_bsub.summary.delivery_ratio, 1e-9)
    )
    # flooding suffers at least as much as B-SUB from memory pressure
    assert push_loss >= bsub_loss - 0.05
    # and tiny buffers must hurt PUSH visibly
    assert tight_push.summary.delivery_ratio < (
        unbounded_push.summary.delivery_ratio
    )
