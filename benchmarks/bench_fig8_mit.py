"""Fig. 8 — delivery ratio, delay, and forwardings vs TTL (MIT Reality).

The same sweep as Fig. 7 over the sparser MIT-like trace, plus the
cross-trace comparison the paper highlights: the MIT network is
sparser, so delivery ratios are lower than on Haggle at equal TTL.
"""

import math

import pytest

from repro.experiments.report import figure_series, series_table
from repro.experiments.sweeps import ttl_sweep

from .conftest import bench_config, emit

TTL_VALUES_MIN = (10.0, 30.0, 100.0, 300.0, 1000.0)


@pytest.fixture(scope="module")
def sweep(mit_trace):
    return ttl_sweep(
        mit_trace, ttl_values_min=TTL_VALUES_MIN, base_config=bench_config()
    )


def _assert_delivery_ordering(sweep):
    i = len(TTL_VALUES_MIN) - 1
    push = sweep["PUSH"][i].summary.delivery_ratio
    bsub = sweep["B-SUB"][i].summary.delivery_ratio
    pull = sweep["PULL"][i].summary.delivery_ratio
    assert push >= bsub > pull


def _assert_push_fastest(sweep):
    """PUSH's delay is no worse than B-SUB's (Fig. 8(b)).

    Delay is conditional on delivery, and PUSH delivers many pairs the
    others never reach; a 15 % tolerance absorbs that censoring bias at
    reduced bench scales.
    """
    i = len(TTL_VALUES_MIN) - 1
    assert (
        sweep["PUSH"][i].summary.mean_delay_s
        <= 1.15 * sweep["B-SUB"][i].summary.mean_delay_s
    )


def _assert_pull_is_one(sweep):
    for r in sweep["PULL"]:
        value = r.summary.forwardings_per_delivered
        if not math.isnan(value):
            assert value == pytest.approx(1.0)


def _assert_mit_lower_than_haggle(sweep, haggle_trace):
    """'Overall, the MIT Reality trace forms a sparser network ...
    so the delivery ratio in the MIT Reality trace is lower.'"""
    haggle = ttl_sweep(
        haggle_trace,
        ttl_values_min=(TTL_VALUES_MIN[-1],),
        protocols=("PUSH",),
        base_config=bench_config(),
    )
    haggle_ratio = haggle["PUSH"][0].summary.delivery_ratio
    mit_ratio = sweep["PUSH"][-1].summary.delivery_ratio
    assert mit_ratio < haggle_ratio


def test_fig8_sweep(benchmark, mit_trace, haggle_trace):
    result = benchmark.pedantic(
        lambda: ttl_sweep(
            mit_trace, ttl_values_min=TTL_VALUES_MIN, base_config=bench_config()
        ),
        rounds=1,
        iterations=1,
    )
    blocks = []
    for metric, title in [
        ("delivery_ratio", "(a) Delivery ratio"),
        ("delay_min", "(b) Delay (minutes)"),
        ("forwardings", "(c) Forwardings per delivered message"),
    ]:
        blocks.append(
            series_table(
                "TTL(min)",
                TTL_VALUES_MIN,
                figure_series(result, metric),
                title=f"Fig. 8 {title}",
            )
        )
    emit("fig8_mit", "\n\n".join(blocks))
    _assert_delivery_ordering(result)
    _assert_push_fastest(result)
    _assert_pull_is_one(result)
    _assert_mit_lower_than_haggle(result, haggle_trace)


def test_fig8a_delivery_ordering(sweep):
    _assert_delivery_ordering(sweep)


def test_fig8b_push_fastest(sweep):
    _assert_push_fastest(sweep)


def test_fig8c_pull_is_one(sweep):
    _assert_pull_is_one(sweep)


def test_fig8_vs_fig7_mit_lower_delivery(sweep, haggle_trace):
    _assert_mit_lower_than_haggle(sweep, haggle_trace)
