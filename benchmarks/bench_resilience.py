"""Degradation curve — B-SUB delivery under increasing frame loss.

The fault subsystem's headline acceptance check: sweep the channel
frame-loss rate on the bench Haggle trace and measure each faulted run
against one shared fault-free twin.  Delivery must degrade
*monotonically* (a lossier channel never helps B-SUB), invariants must
stay conserved at every loss rate, and the whole curve is persisted to
``benchmarks/results/BENCH_resilience.json`` for regression tracking.

All runs share one deterministic workload (same config seeds), so the
curve isolates the channel: every delta against the twin is fault
damage, not workload noise.
"""

import json
from dataclasses import replace

import pytest

from repro.experiments.resilience import ResilienceReport
from repro.experiments.report import series_table
from repro.experiments.runner import _run_experiment
from repro.faults import FaultSpec

from .conftest import RESULTS_DIR, bench_config, emit

LOSS_RATES = (0.1, 0.25, 0.5, 0.75)
TTL_MIN = 120.0
FAULT_SEED = 1


def run_curve(haggle_trace):
    """loss -> ResilienceReport, all sharing one fault-free twin."""
    base = bench_config(ttl_min=TTL_MIN)
    baseline = _run_experiment(haggle_trace, "B-SUB", base)
    reports = {}
    for loss in LOSS_RATES:
        faulted = _run_experiment(
            haggle_trace, "B-SUB",
            replace(base, faults=FaultSpec(frame_loss=loss, seed=FAULT_SEED)),
        )
        reports[loss] = ResilienceReport(faulted=faulted, baseline=baseline)
    return reports


@pytest.fixture(scope="module")
def curve(haggle_trace):
    return run_curve(haggle_trace)


def _assert_monotone_degradation(curve):
    baseline = next(iter(curve.values())).baseline_delivery_ratio
    ratios = [baseline] + [curve[loss].delivery_ratio for loss in LOSS_RATES]
    for lighter, heavier in zip(ratios, ratios[1:]):
        assert heavier <= lighter, ratios
    assert ratios[-1] < ratios[0]  # the sweep actually bites


def _assert_invariants_conserved(curve):
    for loss, report in curve.items():
        s = report.faulted.summary
        assert (s.num_deliveries
                == s.num_intended_deliveries + s.num_false_deliveries), loss
        assert 0.0 <= s.delivery_ratio <= 1.0, loss
        assert s.num_messages == report.baseline.summary.num_messages, loss
        assert report.fault_accounting["frames_lost"] > 0, loss


def _assert_loss_scales_damage(curve):
    lost = [curve[loss].fault_accounting["frames_lost"] for loss in LOSS_RATES]
    forwarded = [curve[loss].faulted.summary.num_forwardings
                 for loss in LOSS_RATES]
    # More loss -> fewer surviving transmissions; the absolute count of
    # lost frames need not grow (there is less traffic left to lose).
    for lighter, heavier in zip(forwarded, forwarded[1:]):
        assert heavier <= lighter, forwarded
    assert all(count > 0 for count in lost)


def _emit_curve(curve):
    baseline = next(iter(curve.values())).baseline
    xs = (0.0,) + LOSS_RATES
    table = series_table(
        "loss", xs,
        {
            "delivery ratio": [baseline.summary.delivery_ratio]
            + [curve[loss].delivery_ratio for loss in LOSS_RATES],
            "retention": [1.0]
            + [curve[loss].delivery_retention for loss in LOSS_RATES],
            "forwardings": [float(baseline.summary.num_forwardings)]
            + [float(curve[loss].faulted.summary.num_forwardings)
               for loss in LOSS_RATES],
        },
        title=f"B-SUB delivery vs frame loss  [TTL = {TTL_MIN:g} min]",
    )
    emit("resilience", table)
    record = {
        "trace": baseline.trace_name,
        "ttl_min": TTL_MIN,
        "fault_seed": FAULT_SEED,
        "baseline_delivery_ratio": baseline.summary.delivery_ratio,
        "curve": {
            str(loss): {
                "delivery_ratio": report.delivery_ratio,
                "delivery_retention": report.delivery_retention,
                "cost_ratio": report.cost_ratio,
                "forwardings": report.faulted.summary.num_forwardings,
                "fault_accounting": report.fault_accounting,
            }
            for loss, report in curve.items()
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_resilience.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )
    return table


def test_resilience_curve(benchmark, haggle_trace):
    curve = benchmark.pedantic(
        lambda: run_curve(haggle_trace), rounds=1, iterations=1
    )
    _emit_curve(curve)
    _assert_monotone_degradation(curve)
    _assert_invariants_conserved(curve)
    _assert_loss_scales_damage(curve)


def test_delivery_degrades_monotonically(curve):
    _assert_monotone_degradation(curve)


def test_invariants_survive_every_loss_rate(curve):
    _assert_invariants_conserved(curve)


def test_heavier_loss_never_increases_traffic(curve):
    _assert_loss_scales_damage(curve)
