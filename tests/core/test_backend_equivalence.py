"""Property test: the dict and array backends are observationally equal.

The array backend is a pure storage swap — both backends perform the
same IEEE-754 arithmetic per position, so after *any* sequence of
operations the two must agree exactly (not approximately) on counters,
queries, and equality.  Hypothesis drives random op sequences over a
dict-backed and an array-backed twin and compares them after every op.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backends import (
    BACKENDS,
    default_backend,
    make_bit_store,
    make_counter_store,
    resolve_backend,
)
from repro.core.bloom import BloomFilter
from repro.core.counting_bloom import CountingBloomFilter
from repro.core.hashing import HashFamily
from repro.core.tcbf import TemporalCountingBloomFilter

FAMILY = HashFamily(4, 128, seed=77)
KEYS = [f"topic-{i}" for i in range(24)]

keys_st = st.lists(st.sampled_from(KEYS), min_size=0, max_size=6)

# One random TCBF operation: (op-name, payload).
tcbf_op = st.one_of(
    st.tuples(st.just("insert"), st.sampled_from(KEYS)),
    st.tuples(st.just("insert_batch"), keys_st),
    st.tuples(st.just("refresh"), st.sampled_from(KEYS)),
    st.tuples(st.just("decay"), st.floats(0.0, 30.0, allow_nan=False)),
    st.tuples(st.just("advance"), st.floats(0.0, 10.0, allow_nan=False)),
    st.tuples(st.just("a_merge"), keys_st),
    st.tuples(st.just("m_merge"), keys_st),
)


def _apply(filters, op, payload, merge_time):
    """Apply one op to every twin, keeping their public state in lockstep."""
    for f in filters:
        if op == "insert":
            if not f.merged:
                f.insert(payload)
        elif op == "insert_batch":
            if not f.merged:
                f.insert_batch(payload)
        elif op == "refresh":
            if not f.merged:
                f.refresh(payload)
        elif op == "decay":
            f.decay(payload)
        elif op == "advance":
            f.advance(f.time + payload)
        elif op in ("a_merge", "m_merge"):
            operand = TemporalCountingBloomFilter.of(
                payload,
                family=FAMILY,
                initial_value=f.initial_value,
                decay_factor=1.5,
                time=merge_time,
                backend=f.backend,
            )
            getattr(f, op)(operand)
        else:  # pragma: no cover - strategy and dispatch must stay in sync
            raise AssertionError(op)


def _assert_tcbf_twins_agree(d, a):
    assert d.counters() == a.counters()
    assert d.time == a.time
    assert d.merged == a.merged
    assert d == a
    hits_d = d.query_batch(KEYS)
    hits_a = a.query_batch(KEYS)
    assert np.array_equal(hits_d, hits_a)
    mins_d = d.min_counter_batch(KEYS)
    mins_a = a.min_counter_batch(KEYS)
    assert np.array_equal(mins_d, mins_a)  # exact, not approx
    for key in KEYS[:6]:
        assert d.query(key) == a.query(key)
        assert d.min_counter(key) == a.min_counter(key)
        assert bool(hits_d[KEYS.index(key)]) == d.query(key)
        assert mins_d[KEYS.index(key)] == d.min_counter(key)


@given(ops=st.lists(tcbf_op, min_size=1, max_size=25))
@settings(max_examples=60, deadline=None)
def test_property_tcbf_backends_agree_over_random_ops(ops):
    twins = [
        TemporalCountingBloomFilter(
            family=FAMILY, initial_value=50.0, decay_factor=1.0, backend=backend
        )
        for backend in BACKENDS
    ]
    d, a = twins
    for step, (op, payload) in enumerate(ops):
        _apply(twins, op, payload, merge_time=d.time + 0.5 * step)
        _assert_tcbf_twins_agree(d, a)


@given(
    inserts=st.lists(st.sampled_from(KEYS), min_size=0, max_size=30),
    deletes=st.lists(st.sampled_from(KEYS), min_size=0, max_size=10),
)
@settings(max_examples=60, deadline=None)
def test_property_cbf_backends_agree(inserts, deletes):
    twins = [CountingBloomFilter(family=FAMILY, backend=b) for b in BACKENDS]
    for f in twins:
        f.insert_all(inserts)
    for key in deletes:
        outcomes = []
        for f in twins:
            try:
                f.delete(key)
                outcomes.append("ok")
            except KeyError:
                outcomes.append("missing")
        assert outcomes[0] == outcomes[1]
    d, a = twins
    assert d.counters() == a.counters()
    assert d == a
    assert np.array_equal(d.query_batch(KEYS), a.query_batch(KEYS))
    assert np.array_equal(d.min_counter_batch(KEYS), a.min_counter_batch(KEYS))


@given(
    inserts=st.lists(st.sampled_from(KEYS), min_size=0, max_size=30),
    merged=st.lists(st.sampled_from(KEYS), min_size=0, max_size=10),
)
@settings(max_examples=60, deadline=None)
def test_property_bloom_backends_agree(inserts, merged):
    twins = [BloomFilter(family=FAMILY, backend=b) for b in BACKENDS]
    for f in twins:
        f.insert_batch(inserts)
        f.merge(BloomFilter.of(merged, family=FAMILY, backend=f.backend))
    d, a = twins
    assert d.set_bits == a.set_bits
    assert d == a
    assert np.array_equal(d.query_batch(KEYS), a.query_batch(KEYS))


class TestBackendSelection:
    def test_default_is_array(self, monkeypatch):
        monkeypatch.delenv("BSUB_FILTER_BACKEND", raising=False)
        assert default_backend() == "array"

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv("BSUB_FILTER_BACKEND", "dict")
        assert default_backend() == "dict"
        assert TemporalCountingBloomFilter(family=FAMILY).backend == "dict"

    def test_explicit_kwarg_beats_env(self, monkeypatch):
        monkeypatch.setenv("BSUB_FILTER_BACKEND", "dict")
        f = TemporalCountingBloomFilter(family=FAMILY, backend="array")
        assert f.backend == "array"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            resolve_backend("sqlite")
        with pytest.raises(ValueError, match="backend"):
            TemporalCountingBloomFilter(family=FAMILY, backend="sqlite")

    def test_unknown_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv("BSUB_FILTER_BACKEND", "nonsense")
        with pytest.raises(ValueError, match="BSUB_FILTER_BACKEND"):
            default_backend()

    def test_store_factories_cover_both_backends(self):
        for backend in BACKENDS:
            assert make_counter_store(backend, 64).is_empty()
            assert make_counter_store(backend, 64, integer=True).is_empty()
            assert make_bit_store(backend, 64).is_empty()

    def test_copies_preserve_backend(self):
        for backend in BACKENDS:
            f = TemporalCountingBloomFilter(family=FAMILY, backend=backend)
            f.insert("topic-0")
            assert f.copy().backend == backend
            assert f.to_bloom().backend == backend


def test_serialization_roundtrips_across_backends():
    """A filter encoded under one backend decodes identically under the
    other — the wire format is backend-agnostic."""
    from repro.core.serialization import decode_tcbf, encode_tcbf

    source = TemporalCountingBloomFilter(
        family=FAMILY, initial_value=50.0, decay_factor=1.0, backend="dict"
    )
    source.insert_batch(KEYS[:8])
    source.advance(7.25)
    blob = encode_tcbf(source)
    decoded = {
        backend: decode_tcbf(
            blob, family=FAMILY, initial_value=50.0, backend=backend
        )
        for backend in BACKENDS
    }
    assert decoded["dict"].counters() == decoded["array"].counters()
    assert decoded["array"].counters() == pytest.approx(
        source.counters(), abs=0.5
    )
