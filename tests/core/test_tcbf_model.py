"""Model-based testing of the TCBF against a naive dense reference.

The production TCBF is a sparse dict with lazy decay; the reference
below is the most literal possible reading of Sec. IV — a dense array
of ``m`` float counters with eager updates.  Hypothesis drives random
operation sequences against both and checks they never diverge.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.hashing import HashFamily
from repro.core.tcbf import TemporalCountingBloomFilter

FAMILY = HashFamily(num_hashes=3, num_bits=48, seed=77)  # small m -> collisions
INITIAL = 20.0
KEYS = [f"key-{i}" for i in range(12)]


class NaiveTCBF:
    """Dense-array reference implementation (eager, no cleverness)."""

    def __init__(self):
        self.counts = [0.0] * FAMILY.num_bits

    def insert(self, key):
        for p in set(FAMILY.positions(key)):
            if self.counts[p] <= 0.0:
                self.counts[p] = INITIAL

    def refresh(self, key):
        for p in set(FAMILY.positions(key)):
            self.counts[p] = INITIAL

    def decay(self, amount):
        self.counts = [
            c - amount if c - amount > 0.0 else 0.0 for c in self.counts
        ]

    def a_merge(self, keys):
        other = NaiveTCBF()
        for key in keys:
            other.insert(key)
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]

    def m_merge(self, keys):
        other = NaiveTCBF()
        for key in keys:
            other.insert(key)
        self.counts = [max(a, b) for a, b in zip(self.counts, other.counts)]

    def query(self, key):
        return all(self.counts[p] > 0.0 for p in FAMILY.positions(key))

    def min_counter(self, key):
        return min(self.counts[p] for p in FAMILY.positions(key))

    def set_positions(self):
        return {p for p, c in enumerate(self.counts) if c > 0.0}


class TCBFMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.real = TemporalCountingBloomFilter(
            family=FAMILY, initial_value=INITIAL
        )
        self.model = NaiveTCBF()
        self.merged = False

    @rule(key=st.sampled_from(KEYS))
    def insert(self, key):
        if self.merged:
            with pytest.raises(RuntimeError):
                self.real.insert(key)
            return
        self.real.insert(key)
        self.model.insert(key)

    @rule(key=st.sampled_from(KEYS))
    def refresh(self, key):
        if self.merged:
            return
        self.real.refresh(key)
        self.model.refresh(key)

    @rule(amount=st.floats(0.0, 15.0))
    def decay(self, amount):
        self.real.decay(amount)
        self.model.decay(amount)

    @rule(keys=st.sets(st.sampled_from(KEYS), max_size=4))
    def a_merge(self, keys):
        operand = TemporalCountingBloomFilter.of(
            keys, family=FAMILY, initial_value=INITIAL, time=self.real.time
        )
        self.real.a_merge(operand)
        self.model.a_merge(keys)
        self.merged = True

    @rule(keys=st.sets(st.sampled_from(KEYS), max_size=4))
    def m_merge(self, keys):
        operand = TemporalCountingBloomFilter.of(
            keys, family=FAMILY, initial_value=INITIAL, time=self.real.time
        )
        self.real.m_merge(operand)
        self.model.m_merge(keys)
        self.merged = True

    @rule(dt=st.floats(0.0, 10.0))
    def advance_without_df(self, dt):
        """With DF = 0 the clock moves but counters must not."""
        self.real.advance(self.real.time + dt)

    @invariant()
    def same_set_bits(self):
        assert set(self.real) == self.model.set_positions()

    @invariant()
    def same_counters(self):
        for position, value in self.real.items():
            assert value == pytest.approx(self.model.counts[position])

    @invariant()
    def same_query_answers(self):
        for key in KEYS:
            assert self.real.query(key) == self.model.query(key)
            assert self.real.min_counter(key) == pytest.approx(
                self.model.min_counter(key)
            )


TestTCBFAgainstModel = TCBFMachine.TestCase
TestTCBFAgainstModel.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
