"""Tests for the classic Bloom filter (paper Sec. III)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bloom import BloomFilter
from repro.core.hashing import HashFamily


class TestBasics:
    def test_new_filter_is_empty(self):
        bf = BloomFilter()
        assert bf.is_empty()
        assert len(bf) == 0
        assert bf.fill_ratio() == 0.0

    def test_insert_sets_hashed_bits(self, family):
        bf = BloomFilter(family=family)
        bf.insert("NewMoon")
        assert set(family.positions("NewMoon")) == set(bf.set_bits)

    def test_no_false_negatives(self):
        bf = BloomFilter(256, 4)
        keys = [f"key-{i}" for i in range(38)]
        bf.insert_all(keys)
        for key in keys:
            assert key in bf

    def test_query_rejects_definitely_absent_key(self):
        bf = BloomFilter(4096, 4)
        bf.insert("present")
        assert "definitely-not-present-xyz" not in bf

    def test_insert_idempotent(self):
        bf = BloomFilter()
        bf.insert("a")
        before = bf.set_bits
        bf.insert("a")
        assert bf.set_bits == before

    def test_len_counts_set_bits(self):
        bf = BloomFilter(256, 4)
        bf.insert("x")
        assert 1 <= len(bf) <= 4

    def test_iter_yields_sorted_positions(self):
        bf = BloomFilter(256, 4)
        bf.insert_all(["a", "b"])
        positions = list(bf)
        assert positions == sorted(positions)

    def test_bit_accessor_and_range_check(self):
        bf = BloomFilter(256, 4)
        bf.insert("a")
        assert any(bf.bit(p) for p in range(256))
        with pytest.raises(IndexError):
            bf.bit(256)

    def test_clear(self):
        bf = BloomFilter.of(["a", "b"])
        bf.clear()
        assert bf.is_empty()
        assert "a" not in bf


class TestMerge:
    def test_merge_is_bitwise_or(self, family):
        a = BloomFilter.of(["x"], family=family)
        b = BloomFilter.of(["y"], family=family)
        merged = a.union(b)
        assert merged.set_bits == a.set_bits | b.set_bits

    def test_merge_preserves_membership_of_both(self, family):
        a = BloomFilter.of(["x", "y"], family=family)
        b = BloomFilter.of(["z"], family=family)
        a.merge(b)
        for key in ("x", "y", "z"):
            assert key in a

    def test_merge_rejects_incompatible_families(self):
        a = BloomFilter(256, 4, seed=1)
        b = BloomFilter(256, 4, seed=2)
        with pytest.raises(ValueError, match="hash families"):
            a.merge(b)

    def test_union_leaves_operands_untouched(self, family):
        a = BloomFilter.of(["x"], family=family)
        b = BloomFilter.of(["y"], family=family)
        bits_a, bits_b = a.set_bits, b.set_bits
        a.union(b)
        assert a.set_bits == bits_a
        assert b.set_bits == bits_b


class TestConstructionHelpers:
    def test_of_inserts_all(self, family):
        keys = ["a", "b", "c"]
        bf = BloomFilter.of(keys, family=family)
        assert bf.query_all(keys) == keys

    def test_copy_is_independent(self):
        bf = BloomFilter.of(["a"])
        clone = bf.copy()
        clone.insert("b")
        assert "b" not in bf or bf.set_bits != clone.set_bits

    def test_from_bits_roundtrip(self, family):
        bf = BloomFilter.of(["a", "b"], family=family)
        rebuilt = BloomFilter.from_bits(bf.set_bits, family)
        assert rebuilt == bf

    def test_from_bits_rejects_out_of_range(self, family):
        with pytest.raises(ValueError, match="out of range"):
            BloomFilter.from_bits([256], family)

    def test_equality_requires_same_family(self):
        a = BloomFilter(256, 4, seed=1)
        b = BloomFilter(256, 4, seed=2)
        assert a != b


class TestFalsePositiveBehaviour:
    def test_empirical_fpr_close_to_eq1(self):
        """The measured FPR of a 38-key, 256-bit, 4-hash filter should be
        in the neighbourhood of the paper's 0.04 worst case."""
        from repro.core.analysis import false_positive_rate

        bf = BloomFilter(256, 4, seed=12345)
        stored = [f"stored-{i}" for i in range(38)]
        bf.insert_all(stored)
        probes = [f"probe-{i}" for i in range(20_000)]
        hits = sum(1 for p in probes if p in bf)
        measured = hits / len(probes)
        predicted = false_positive_rate(38, 256, 4)
        assert predicted == pytest.approx(0.04, abs=0.01)  # paper's figure
        assert measured == pytest.approx(predicted, abs=0.02)

    def test_fill_ratio_grows_with_insertions(self):
        bf = BloomFilter(256, 4)
        previous = 0.0
        for i in range(0, 40, 10):
            for j in range(i, i + 10):
                bf.insert(f"k{j}")
            assert bf.fill_ratio() >= previous
            previous = bf.fill_ratio()


@given(keys=st.lists(st.text(min_size=1, max_size=15), max_size=30))
@settings(max_examples=50)
def test_property_never_false_negative(keys):
    bf = BloomFilter(128, 3)
    bf.insert_all(keys)
    assert all(k in bf for k in keys)


@given(
    left=st.sets(st.text(min_size=1, max_size=10), max_size=15),
    right=st.sets(st.text(min_size=1, max_size=10), max_size=15),
)
@settings(max_examples=50)
def test_property_merge_equivalent_to_inserting_union(left, right):
    fam = HashFamily(3, 128, seed=4)
    merged = BloomFilter.of(left, family=fam).union(BloomFilter.of(right, family=fam))
    direct = BloomFilter.of(left | right, family=fam)
    assert merged == direct


@given(keys=st.sets(st.text(min_size=1, max_size=10), max_size=20))
@settings(max_examples=50)
def test_property_fill_ratio_bounded_by_inserted_bits(keys):
    fam = HashFamily(4, 256, seed=8)
    bf = BloomFilter.of(keys, family=fam)
    assert len(bf) <= 4 * len(keys)
    assert bf.fill_ratio() <= min(1.0, 4 * len(keys) / 256)
