"""Tests for the counting Bloom filter (paper Sec. III background)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.counting_bloom import CountingBloomFilter
from repro.core.hashing import HashFamily


class TestInsertDelete:
    def test_insert_then_query(self):
        cbf = CountingBloomFilter(256, 4)
        cbf.insert("a")
        assert "a" in cbf

    def test_delete_removes_single_insertion(self):
        cbf = CountingBloomFilter(4096, 4)
        cbf.insert("a")
        cbf.delete("a")
        assert "a" not in cbf
        assert cbf.is_empty()

    def test_double_insert_requires_double_delete(self):
        cbf = CountingBloomFilter(256, 4)
        cbf.insert("a")
        cbf.insert("a")
        cbf.delete("a")
        assert "a" in cbf
        cbf.delete("a")
        assert "a" not in cbf

    def test_delete_absent_key_raises(self):
        cbf = CountingBloomFilter(4096, 4)
        cbf.insert("present")
        with pytest.raises(KeyError):
            cbf.delete("definitely-absent-key")

    def test_delete_leaves_other_keys(self, family):
        cbf = CountingBloomFilter(family=family)
        cbf.insert_all(["a", "b", "c"])
        cbf.delete("b")
        assert "a" in cbf
        assert "c" in cbf

    def test_counters_track_overlaps(self, small_family):
        """Shared bits between keys must survive deleting one key."""
        cbf = CountingBloomFilter(family=small_family)
        cbf.insert("k1")
        cbf.insert("k2")
        shared = set(small_family.distinct_positions("k1")) & set(
            small_family.distinct_positions("k2")
        )
        cbf.delete("k1")
        for p in shared:
            assert cbf.bit(p)
        assert "k2" in cbf

    def test_repeated_probe_positions_counted_once(self):
        """With k probes landing on the same bit, insert/delete round-trips."""
        fam = HashFamily(8, 4, seed=0)  # heavy collisions guaranteed
        cbf = CountingBloomFilter(family=fam)
        cbf.insert("x")
        cbf.delete("x")
        assert cbf.is_empty()


class TestQueriesAndViews:
    def test_min_counter_bounds_insertions(self):
        cbf = CountingBloomFilter(256, 4)
        for _ in range(3):
            cbf.insert("a")
        assert cbf.min_counter("a") >= 3

    def test_min_counter_zero_for_absent(self):
        cbf = CountingBloomFilter(4096, 4)
        assert cbf.min_counter("nothing") == 0

    def test_to_bloom_same_membership(self, family):
        cbf = CountingBloomFilter.of(["a", "b"], family=family)
        bf = cbf.to_bloom()
        assert "a" in bf and "b" in bf
        assert set(bf.set_bits) == {
            p for p in range(256) if cbf.counter(p) > 0
        }

    def test_fill_ratio_and_len(self):
        cbf = CountingBloomFilter(256, 4)
        cbf.insert("a")
        assert cbf.fill_ratio() == len(cbf) / 256

    def test_counter_out_of_range(self):
        cbf = CountingBloomFilter(256, 4)
        with pytest.raises(IndexError):
            cbf.counter(-1)

    def test_query_all_filters(self, family):
        cbf = CountingBloomFilter.of(["a", "b"], family=family)
        assert set(cbf.query_all(["a", "b"])) == {"a", "b"}

    def test_copy_independent(self, family):
        cbf = CountingBloomFilter.of(["a"], family=family)
        clone = cbf.copy()
        clone.insert("b")
        assert cbf != clone

    def test_clear(self, family):
        cbf = CountingBloomFilter.of(["a"], family=family)
        cbf.clear()
        assert cbf.is_empty()


@given(keys=st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=20))
@settings(max_examples=50)
def test_property_insert_all_then_delete_all_empties(keys):
    fam = HashFamily(3, 64, seed=2)
    cbf = CountingBloomFilter(family=fam)
    cbf.insert_all(keys)
    for key in keys:
        cbf.delete(key)
    assert cbf.is_empty()


@given(keys=st.sets(st.text(min_size=1, max_size=8), max_size=15))
@settings(max_examples=50)
def test_property_membership_matches_plain_bloom(keys):
    from repro.core.bloom import BloomFilter

    fam = HashFamily(3, 128, seed=5)
    cbf = CountingBloomFilter.of(keys, family=fam)
    bf = BloomFilter.of(keys, family=fam)
    probes = list(keys) + [f"probe-{i}" for i in range(30)]
    for p in probes:
        assert (p in cbf) == (p in bf)
