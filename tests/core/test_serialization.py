"""Tests for the compact wire encoding (paper Sec. VI-C)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bloom import BloomFilter
from repro.core.hashing import HashFamily
from repro.core.serialization import (
    decode_bloom,
    decode_tcbf,
    encode_bloom,
    encode_tcbf,
    encoded_bloom_size,
    encoded_tcbf_size,
)
from repro.core.tcbf import TemporalCountingBloomFilter


class TestBloomRoundtrip:
    def test_roundtrip_sparse(self, family):
        bf = BloomFilter.of(["a", "b", "c"], family=family)
        assert decode_bloom(encode_bloom(bf), family) == bf

    def test_roundtrip_empty(self, family):
        bf = BloomFilter(family=family)
        assert decode_bloom(encode_bloom(bf), family) == bf

    def test_roundtrip_dense_uses_raw_bits(self, family):
        bf = BloomFilter.of([f"k{i}" for i in range(200)], family=family)
        data = encode_bloom(bf)
        assert data[0] == 0x02  # raw-bits tag
        assert decode_bloom(data, family) == bf

    def test_sparse_encoding_smaller_than_raw(self, family):
        sparse = BloomFilter.of(["one"], family=family)
        assert encoded_bloom_size(sparse) < 256 / 8 + 5

    def test_geometry_mismatch_rejected(self, family):
        bf = BloomFilter.of(["a"], family=family)
        other = HashFamily(4, 512, seed=family.seed)
        with pytest.raises(ValueError, match="m="):
            decode_bloom(encode_bloom(bf), other)

    def test_rejects_tcbf_payload(self, family):
        t = TemporalCountingBloomFilter.of(["a"], family=family)
        data = encode_tcbf(t, counters="full")
        with pytest.raises(ValueError, match="tag"):
            decode_bloom(data, family)


class TestTcbfRoundtrip:
    def test_full_roundtrip_preserves_membership_and_counters(self, family):
        t = TemporalCountingBloomFilter.of(
            ["a", "b"], family=family, initial_value=50
        )
        decoded = decode_tcbf(
            encode_tcbf(t, counters="full"), family, initial_value=50
        )
        assert set(decoded) == set(t)
        for position, value in t.items():
            assert decoded.counter(position) == pytest.approx(value, rel=0.01)

    def test_decoded_filter_is_merge_only(self, family):
        t = TemporalCountingBloomFilter.of(["a"], family=family)
        decoded = decode_tcbf(encode_tcbf(t), family, initial_value=50)
        assert decoded.merged
        with pytest.raises(RuntimeError):
            decoded.insert("x")

    def test_identical_mode_roundtrip(self, family):
        t = TemporalCountingBloomFilter.of(
            ["a", "b", "c"], family=family, initial_value=50
        )
        data = encode_tcbf(t, counters="identical")
        decoded = decode_tcbf(data, family, initial_value=50)
        assert set(decoded) == set(t)
        values = {v for _, v in decoded.items()}
        assert len(values) == 1
        assert values.pop() == pytest.approx(50, rel=0.01)

    def test_identical_mode_rejects_mixed_counters(self, family):
        a = TemporalCountingBloomFilter.of(["a"], family=family, initial_value=50)
        b = TemporalCountingBloomFilter.of(["b"], family=family, initial_value=50)
        a.a_merge(b)
        a.decay(10)
        # force genuinely different counters by re-merging a fresh filter
        c = TemporalCountingBloomFilter.of(["c"], family=family, initial_value=50)
        a.a_merge(c)
        with pytest.raises(ValueError, match="identical"):
            encode_tcbf(a, counters="identical")

    def test_none_mode_produces_plain_bloom(self, family):
        t = TemporalCountingBloomFilter.of(["a", "b"], family=family)
        data = encode_tcbf(t, counters="none")
        bf = decode_bloom(data, family)
        assert bf == t.to_bloom()

    def test_unknown_mode_rejected(self, family):
        t = TemporalCountingBloomFilter.of(["a"], family=family)
        with pytest.raises(ValueError, match="counters"):
            encode_tcbf(t, counters="sometimes")

    def test_quantisation_granularity(self, family):
        """1-byte counters with default scale resolve C/255 steps —
        the paper's '5.6 minutes in 24 hours' granularity argument."""
        t = TemporalCountingBloomFilter.of(
            ["a"], family=family, initial_value=50, decay_factor=1.0
        )
        t.advance(0.05)  # much less than one quantisation step (50/255≈0.2)
        decoded = decode_tcbf(encode_tcbf(t), family, initial_value=50)
        assert decoded.min_counter("a") == pytest.approx(50, abs=0.3)

    def test_counter_scale_override(self, family):
        t = TemporalCountingBloomFilter.of(["a"], family=family, initial_value=50)
        decoded = decode_tcbf(
            encode_tcbf(t, counter_scale=1.0), family, initial_value=50
        )
        assert decoded.min_counter("a") == pytest.approx(50)

    def test_geometry_mismatch_rejected(self, family):
        t = TemporalCountingBloomFilter.of(["a"], family=family)
        with pytest.raises(ValueError, match="m="):
            decode_tcbf(encode_tcbf(t), HashFamily(4, 512, family.seed), 50)

    def test_dense_filter_uses_raw_vector_and_roundtrips(self, family):
        """Past the Sec. VI-C density threshold the encoder switches to
        the raw bit-vector + position-ordered counters form."""
        t = TemporalCountingBloomFilter.of(
            [f"k{i}" for i in range(60)], family=family, initial_value=50
        )
        t.decay(10.0)  # non-uniform path is irrelevant; counters all 40
        data = encode_tcbf(t, counters="full")
        assert data[0] == 0x05  # raw-full tag
        decoded = decode_tcbf(data, family, initial_value=50)
        assert set(decoded) == set(t)
        for position, value in t.items():
            assert decoded.counter(position) == pytest.approx(value, rel=0.02)

    def test_reinforced_counters_survive_quantisation(self, family):
        """Counters above C (A-merge reinforcement) must not clip."""
        relay = TemporalCountingBloomFilter(family=family, initial_value=50)
        boost = TemporalCountingBloomFilter.of(
            ["hot"], family=family, initial_value=50
        )
        for _ in range(4):
            relay.a_merge(boost)  # counters reach 200
        decoded = decode_tcbf(encode_tcbf(relay), family, initial_value=50)
        assert decoded.min_counter("hot") == pytest.approx(200, rel=0.02)


class TestSizes:
    def test_size_ordering_none_identical_full(self, family):
        t = TemporalCountingBloomFilter.of(
            [f"k{i}" for i in range(10)], family=family
        )
        assert (
            encoded_tcbf_size(t, "none")
            < encoded_tcbf_size(t, "identical")
            < encoded_tcbf_size(t, "full")
        )

    def test_size_matches_encoded_length(self, family):
        t = TemporalCountingBloomFilter.of(["a", "b"], family=family)
        for mode in ("none", "identical", "full"):
            assert encoded_tcbf_size(t, mode) == len(encode_tcbf(t, counters=mode))

    def test_single_key_under_papers_five_bytes_plus_header(self, family):
        """Sec. VII-A: at most 5 bytes encode one key (m=256, k=4) —
        excluding the fixed header."""
        t = TemporalCountingBloomFilter.of(["NewMoon"], family=family)
        body = encoded_tcbf_size(t, "identical") - 10  # header+scale+shared byte
        assert body <= 4  # ≤ 4 one-byte locations


@given(keys=st.sets(st.text(min_size=1, max_size=10), max_size=30))
@settings(max_examples=50)
def test_property_bloom_roundtrip_any_keyset(keys):
    fam = HashFamily(4, 256, seed=17)
    bf = BloomFilter.of(keys, family=fam)
    assert decode_bloom(encode_bloom(bf), fam) == bf


@given(
    keys=st.sets(st.text(min_size=1, max_size=10), min_size=1, max_size=20),
    initial=st.floats(1.0, 200.0),
)
@settings(max_examples=50)
def test_property_tcbf_roundtrip_membership(keys, initial):
    fam = HashFamily(4, 256, seed=18)
    t = TemporalCountingBloomFilter.of(keys, family=fam, initial_value=initial)
    decoded = decode_tcbf(encode_tcbf(t), fam, initial_value=initial)
    assert all(k in decoded for k in keys)
    assert set(decoded) == set(t)
