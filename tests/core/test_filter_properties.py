"""Property-based tests for the filter zoo (hypothesis).

Three laws the zoo's novel pieces must hold under adversarial inputs:

* retouching never introduces false negatives for protected keys the
  planner did not explicitly sacrifice;
* the Eq. 9–10 binary-search allocation always matches the brute-force
  enumeration optimum (and fails exactly when it fails);
* the 2D counting filter's cells never underflow under interleaved
  insert / guarded-delete / decay sequences.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HashFamily
from repro.core.allocation import plan_allocation, plan_allocation_brute
from repro.core.countbf import CountBF2D
from repro.core.retouched import RetouchedTCBF, plan_retouch

FAMILY = HashFamily(4, 256, 0x9E37)

keys = st.integers(min_value=0, max_value=5000).map(lambda i: f"key-{i}")
key_sets = st.sets(keys, min_size=1, max_size=30)


@settings(max_examples=60, deadline=None)
@given(
    protected=key_sets,
    fp_keys=key_sets,
    max_sacrifice=st.integers(min_value=0, max_value=4),
)
def test_retouch_never_drops_unsacrificed_keys(protected, fp_keys, max_sacrifice):
    """Retouched BF has no FNs for protected keys outside the sacrifice set.

    This is the Donnet et al. RBF safety contract: the planner may
    *choose* to sacrifice interests (within budget), but any protected
    key it did not list as sacrificed must still query positive after
    its bits are scrubbed.
    """
    plan = plan_retouch(fp_keys, protected, FAMILY, max_sacrifice=max_sacrifice)
    assert len(plan.sacrificed_keys) <= max_sacrifice
    assert plan.sacrificed_keys <= frozenset(protected)

    filt = RetouchedTCBF(family=FAMILY, cleared_bits=plan.cleared_bits)
    filt.insert_batch(sorted(protected))
    for key in protected:
        if key in plan.sacrificed_keys:
            continue
        assert filt.query(key), f"retouching dropped unsacrificed key {key!r}"

    # Every neutralised FP key must actually stop matching.
    for key in plan.neutralised_keys:
        assert not filt.query(key), f"neutralised key {key!r} still matches"


@settings(max_examples=80, deadline=None)
@given(
    total_keys=st.integers(min_value=1, max_value=500),
    memory_bound=st.floats(min_value=8.0, max_value=8192.0),
    num_bits=st.sampled_from([64, 128, 256]),
    num_hashes=st.integers(min_value=1, max_value=6),
)
def test_allocation_binary_search_matches_brute_force(
    total_keys, memory_bound, num_bits, num_hashes
):
    """Eq. 9–10 binary search == brute-force enumeration, including failure."""
    kwargs = dict(
        num_bits=num_bits,
        num_hashes=num_hashes,
        max_filters=256,
    )
    try:
        fast = plan_allocation(total_keys, memory_bound, **kwargs)
    except ValueError:
        fast = None
    try:
        brute = plan_allocation_brute(total_keys, memory_bound, **kwargs)
    except ValueError:
        brute = None

    if fast is None or brute is None:
        assert fast is None and brute is None
        return
    assert fast.memory_bytes < memory_bound
    assert brute.memory_bytes < memory_bound
    # The paper's rule (largest feasible h, FPR monotone decreasing)
    # can only ever land on an h >= the brute-force tie-break (which
    # prefers the cheapest among FPR-equivalent allocations).
    assert fast.num_filters >= brute.num_filters
    # Below ~1e-12 the joint FPR is float-noise-dominated (the curve's
    # mathematical monotonicity is smaller than rounding error), so any
    # feasible allocation is equally optimal; above it the binary
    # search must achieve the exhaustive optimum.
    if brute.joint_fpr > 1e-12:
        assert fast.joint_fpr == pytest.approx(brute.joint_fpr, rel=1e-6, abs=0)
    if fast.num_filters == brute.num_filters:
        assert fast.memory_bytes == brute.memory_bytes
        assert fast.joint_fpr == brute.joint_fpr


ops = st.lists(
    st.tuples(st.sampled_from(["insert", "delete", "decay"]), keys),
    min_size=1,
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(ops=ops)
def test_countbf_counters_never_underflow(ops):
    """Interleaved insert/guarded-delete/decay keeps every cell >= 0.

    Deletes are issued both for present and absent keys; the filter must
    refuse the absent ones (KeyError) instead of driving shared cells
    negative, and after any prefix of the sequence no stored cell value
    may be negative.
    """
    filt = CountBF2D(num_bits=128, num_hashes=3, rows=8, decay_factor=0.0)
    live = {}  # key -> net insert count we believe is still present
    for op, key in ops:
        if op == "insert":
            filt.insert(key)
            live[key] = live.get(key, 0) + 1
        elif op == "delete":
            try:
                filt.delete(key)
            except KeyError:
                # Refused: must only happen when the key *looks* absent,
                # which implies we hold no net inserts for it.
                assert live.get(key, 0) == 0
            else:
                if live.get(key, 0) > 0:
                    live[key] -= 1
        else:  # decay
            filt.decay(7.5)
            # Decay weakens everything; our bookkeeping of "certainly
            # present" keys no longer holds, so reset expectations.
            live = {}
        for _, value in filt.items():
            assert value >= 0.0, f"cell underflowed to {value}"

    # Keys with net inserts and no intervening decay must still match.
    for key, count in live.items():
        if count > 0:
            assert filt.query(key)
            assert filt.min_counter(key) >= filt.initial_value - 1e-9
