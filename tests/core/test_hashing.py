"""Tests for the hash-function family."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashing import DEFAULT_SEED, HashFamily


class TestConstruction:
    def test_defaults_match_requested_geometry(self):
        fam = HashFamily(4, 256)
        assert fam.num_hashes == 4
        assert fam.num_bits == 256
        assert fam.seed == DEFAULT_SEED

    def test_rejects_zero_hashes(self):
        with pytest.raises(ValueError, match="num_hashes"):
            HashFamily(0, 256)

    def test_rejects_degenerate_bit_vector(self):
        with pytest.raises(ValueError, match="num_bits"):
            HashFamily(4, 1)

    def test_repr_mentions_geometry(self):
        assert "num_hashes=4" in repr(HashFamily(4, 256))


class TestPositions:
    def test_positions_in_range(self):
        fam = HashFamily(4, 256)
        for key in ("NewMoon", "a", "", "日本語"):
            for p in fam.positions(key):
                assert 0 <= p < 256

    def test_position_count_equals_num_hashes(self):
        fam = HashFamily(7, 512)
        assert len(fam.positions("key")) == 7

    def test_deterministic(self):
        fam = HashFamily(4, 256, seed=5)
        assert fam.positions("NewMoon") == fam.positions("NewMoon")

    def test_two_instances_same_seed_agree(self):
        a = HashFamily(4, 256, seed=5)
        b = HashFamily(4, 256, seed=5)
        assert a.positions("key") == b.positions("key")

    def test_different_seeds_differ_somewhere(self):
        a = HashFamily(4, 4096, seed=1)
        b = HashFamily(4, 4096, seed=2)
        keys = [f"key-{i}" for i in range(50)]
        assert any(a.positions(k) != b.positions(k) for k in keys)

    def test_different_keys_differ_somewhere(self):
        fam = HashFamily(4, 4096)
        assert fam.positions("alpha") != fam.positions("beta")

    def test_distinct_positions_sorted_unique(self):
        fam = HashFamily(8, 8, seed=3)  # tiny m forces repeats
        distinct = fam.distinct_positions("x")
        assert distinct == sorted(set(distinct))

    def test_positions_for_preserves_order(self):
        fam = HashFamily(4, 256)
        keys = ["a", "b", "c"]
        batched = fam.positions_for(keys)
        assert batched == [fam.positions(k) for k in keys]

    def test_cache_returns_fresh_list(self):
        fam = HashFamily(4, 256)
        first = fam.positions("key")
        first.append(-1)  # mutating the returned list must not poison the cache
        assert fam.positions("key") != first
        assert all(0 <= p < 256 for p in fam.positions("key"))


class TestPositionsBatch:
    def test_rows_match_scalar_positions(self):
        fam = HashFamily(4, 256, seed=11)
        keys = ["a", "b", "", "日本語", "a"]  # duplicates allowed
        batch = fam.positions_batch(keys)
        assert batch.shape == (5, 4)
        for row, key in zip(batch, keys):
            assert row.tolist() == fam.positions(key)

    def test_mixed_cached_and_uncached(self):
        fam = HashFamily(4, 512, seed=3)
        fam.positions("warm")  # pre-populate the cache
        batch = fam.positions_batch(["cold-1", "warm", "cold-2"])
        assert batch[1].tolist() == fam.positions("warm")
        assert batch[0].tolist() == fam.positions("cold-1")
        assert batch[2].tolist() == fam.positions("cold-2")

    def test_empty_batch(self):
        fam = HashFamily(4, 256)
        batch = fam.positions_batch([])
        assert batch.shape == (0, 4)

    def test_batch_matches_across_instances(self):
        a = HashFamily(6, 1 << 20, seed=42)
        b = HashFamily(6, 1 << 20, seed=42)
        keys = [f"key-{i}" for i in range(100)]
        scalar = np.array([b.positions(k) for k in keys])
        assert np.array_equal(a.positions_batch(keys), scalar)

    def test_positions_in_range_for_odd_m(self):
        fam = HashFamily(5, 997)  # non-power-of-two m
        batch = fam.positions_batch([f"k{i}" for i in range(64)])
        assert batch.min() >= 0
        assert batch.max() < 997


class TestCacheEviction:
    def test_cache_never_exceeds_limit(self, monkeypatch):
        monkeypatch.setattr(HashFamily, "_CACHE_LIMIT", 8)
        fam = HashFamily(4, 256)
        for i in range(50):
            fam.positions(f"key-{i}")
        assert len(fam._cache) == 8

    def test_cache_keeps_accepting_new_keys_when_full(self, monkeypatch):
        """The pre-fix behaviour froze the cache at the limit: new keys
        were recomputed forever.  Now the newest key is always cached."""
        monkeypatch.setattr(HashFamily, "_CACHE_LIMIT", 4)
        fam = HashFamily(4, 256)
        for i in range(10):
            fam.positions(f"key-{i}")
        assert "key-9" in fam._cache

    def test_eviction_is_least_recently_used(self, monkeypatch):
        monkeypatch.setattr(HashFamily, "_CACHE_LIMIT", 3)
        fam = HashFamily(4, 256)
        fam.positions("a")
        fam.positions("b")
        fam.positions("c")
        fam.positions("a")  # refresh 'a' -> 'b' is now the LRU entry
        fam.positions("d")  # evicts 'b'
        assert set(fam._cache) == {"a", "c", "d"}

    def test_batch_populates_cache_with_eviction(self, monkeypatch):
        monkeypatch.setattr(HashFamily, "_CACHE_LIMIT", 4)
        fam = HashFamily(4, 256)
        fam.positions_batch([f"key-{i}" for i in range(10)])
        assert len(fam._cache) == 4
        assert "key-9" in fam._cache

    def test_evicted_key_recomputes_identically(self, monkeypatch):
        monkeypatch.setattr(HashFamily, "_CACHE_LIMIT", 2)
        fam = HashFamily(4, 256)
        first = fam.positions("victim")
        for i in range(5):
            fam.positions(f"filler-{i}")
        assert "victim" not in fam._cache
        assert fam.positions("victim") == first


class TestCompatibility:
    def test_compatible_with_same_parameters(self):
        assert HashFamily(4, 256, 1).compatible_with(HashFamily(4, 256, 1))

    @pytest.mark.parametrize(
        "other",
        [HashFamily(3, 256, 1), HashFamily(4, 128, 1), HashFamily(4, 256, 2)],
    )
    def test_incompatible_when_any_parameter_differs(self, other):
        assert not HashFamily(4, 256, 1).compatible_with(other)

    def test_equality_and_hash(self):
        a, b = HashFamily(4, 256, 1), HashFamily(4, 256, 1)
        assert a == b
        assert hash(a) == hash(b)

    def test_spawn_changes_only_num_bits(self):
        fam = HashFamily(4, 256, seed=9)
        spawned = fam.spawn(1024)
        assert spawned.num_bits == 1024
        assert spawned.num_hashes == 4
        assert spawned.seed == 9


class TestDistribution:
    def test_positions_spread_over_vector(self):
        """Hashing many keys should touch a large share of a 256-bit vector."""
        fam = HashFamily(4, 256)
        touched = set()
        for i in range(200):
            touched.update(fam.positions(f"key-{i}"))
        assert len(touched) > 200  # near-uniform coverage

    def test_approximate_uniformity(self):
        """Per-bit hit counts should be within a loose factor of the mean."""
        fam = HashFamily(4, 64)
        counts = [0] * 64
        for i in range(2000):
            for p in fam.positions(f"uniform-{i}"):
                counts[p] += 1
        mean = sum(counts) / len(counts)
        assert all(0.5 * mean < c < 1.5 * mean for c in counts)


@given(key=st.text(max_size=40), seed=st.integers(0, 2**32 - 1))
@settings(max_examples=60)
def test_property_positions_valid_for_any_key(key, seed):
    fam = HashFamily(4, 256, seed=seed)
    positions = fam.positions(key)
    assert len(positions) == 4
    assert all(0 <= p < 256 for p in positions)


@given(key=st.text(min_size=1, max_size=20))
@settings(max_examples=40)
def test_property_determinism_across_instances(key):
    assert HashFamily(4, 128, 3).positions(key) == HashFamily(4, 128, 3).positions(key)
