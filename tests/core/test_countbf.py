"""Unit tests for the 2D counting Bloom filter backend."""

import numpy as np
import pytest

from repro.core.countbf import CountBF2D

KEYS = [f"topic-{i}" for i in range(10)]


class TestGeometry:
    def test_grid_shape(self):
        filt = CountBF2D(num_bits=256, num_hashes=4, rows=16)
        assert filt.rows == 16
        assert filt.cols == 16
        assert filt.num_cells == 256
        assert filt.num_bits == 256

    def test_non_divisible_bits_round_up(self):
        filt = CountBF2D(num_bits=250, num_hashes=4, rows=16)
        assert filt.cols == 16  # ceil(250 / 16)
        assert filt.num_cells == 256

    def test_validation(self):
        with pytest.raises(ValueError):
            CountBF2D(rows=1)
        with pytest.raises(ValueError):
            CountBF2D(num_bits=16, rows=16)
        with pytest.raises(ValueError):
            CountBF2D(initial_value=0)
        with pytest.raises(ValueError):
            CountBF2D(decay_factor=-0.1)

    def test_cells_within_grid(self):
        filt = CountBF2D(num_bits=256, num_hashes=4, rows=16)
        for key in KEYS:
            cells = filt._cells(key)
            assert cells == sorted(set(cells))
            assert all(0 <= c < filt.num_cells for c in cells)
            assert 1 <= len(cells) <= filt.num_hashes

    def test_row_col_families_are_independent(self):
        """Row and col coordinates must come from distinct hash families."""
        filt = CountBF2D(num_bits=256, num_hashes=4, rows=16)
        rows = [tuple(filt._row_family.positions(k)) for k in KEYS]
        cols = [tuple(filt._col_family.positions(k)) for k in KEYS]
        assert rows != cols


class TestCountingSemantics:
    def test_insert_then_delete_round_trip(self):
        filt = CountBF2D()
        filt.insert("a")
        assert filt.query("a")
        filt.delete("a")
        assert not filt.query("a")
        assert filt.is_empty()

    def test_double_insert_needs_double_delete(self):
        filt = CountBF2D()
        filt.insert("a")
        filt.insert("a")
        filt.delete("a")
        assert filt.query("a")
        filt.delete("a")
        assert not filt.query("a")

    def test_delete_absent_raises(self):
        filt = CountBF2D()
        with pytest.raises(KeyError):
            filt.delete("never-inserted")
        filt.insert("a")
        with pytest.raises(KeyError):
            filt.delete("definitely-absent-key")

    def test_delete_shared_cells_floors_at_zero(self):
        filt = CountBF2D(num_bits=32, num_hashes=4, rows=4)
        # Tiny grid: collisions guaranteed across enough keys.
        for i in range(20):
            filt.insert(f"k{i}")
        filt.delete("k0")
        assert all(v >= 0.0 for _, v in filt.items())

    def test_announce_is_additive(self):
        filt = CountBF2D()
        filt.announce(["a", "b"])
        filt.announce(["a"])
        assert filt.min_counter("a") >= 2 * filt.initial_value - 1e-9
        assert filt.min_counter("b") >= filt.initial_value - 1e-9


class TestMerging:
    def test_a_merge_sums_m_merge_maxes(self):
        left = CountBF2D()
        right = CountBF2D()
        left.insert("a")
        right.insert("a")
        summed = left.copy()
        summed.a_merge(right)
        assert summed.min_counter("a") == pytest.approx(2 * left.initial_value)
        maxed = left.copy()
        maxed.m_merge(right)
        assert maxed.min_counter("a") == pytest.approx(left.initial_value)

    def test_merge_aligns_clocks(self):
        left = CountBF2D(decay_factor=0.1)
        right = CountBF2D(decay_factor=0.1)
        left.insert("a")
        right.insert("b")
        left.advance(100.0)  # left's 'a' decays to 40
        left.m_merge(right)  # right is at t=0; its 'b' must lag-decay too
        assert left.min_counter("b") == pytest.approx(40.0)
        assert left.min_counter("a") == pytest.approx(40.0)

    def test_merge_type_and_geometry_mismatch(self):
        filt = CountBF2D(num_bits=256, rows=16)
        with pytest.raises(TypeError):
            filt.a_merge(object())
        with pytest.raises(ValueError):
            filt.a_merge(CountBF2D(num_bits=256, rows=8))
        with pytest.raises(ValueError):
            filt.a_merge(CountBF2D(num_bits=256, rows=16, seed=999))


class TestDecayAndWire:
    def test_decay_clears_grid(self):
        filt = CountBF2D(decay_factor=1.0)
        filt.insert("a")
        filt.advance(filt.initial_value + 1)
        assert filt.is_empty()
        assert filt.fill_ratio() == 0.0

    def test_wire_bytes_modes(self):
        filt = CountBF2D()
        for key in KEYS:
            filt.insert(key)
        full = filt.wire_bytes(with_counters=True)
        bits_only = filt.wire_bytes(with_counters=False)
        assert full > bits_only > 0

    def test_batch_matches_scalar_on_tiny_grid(self):
        filt = CountBF2D(num_bits=32, num_hashes=4, rows=4)
        for key in KEYS[:4]:
            filt.insert(key)
        probes = KEYS + ["x", "y"]
        np.testing.assert_array_equal(
            np.asarray(filt.query_batch(probes), dtype=bool),
            np.asarray([filt.query(p) for p in probes], dtype=bool),
        )
        np.testing.assert_allclose(
            np.asarray(filt.min_counter_batch(probes), dtype=float),
            [filt.min_counter(p) for p in probes],
            atol=1e-12,
        )
