"""Tests for the closed-form analysis (paper Eq. 1-8)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import analysis


class TestFalsePositiveRate:
    def test_paper_worst_case_value(self):
        """Sec. VII-A: 38 keys in a 256-bit, 4-hash filter -> FPR ≈ 0.04."""
        assert analysis.false_positive_rate(38, 256, 4) == pytest.approx(
            0.04, abs=0.007
        )

    def test_zero_keys_zero_fpr(self):
        assert analysis.false_positive_rate(0, 256, 4) == 0.0

    def test_monotone_in_keys(self):
        values = [analysis.false_positive_rate(n, 256, 4) for n in range(0, 200, 10)]
        assert values == sorted(values)

    def test_exact_close_to_approximation(self):
        approx = analysis.false_positive_rate(38, 256, 4)
        exact = analysis.false_positive_rate(38, 256, 4, exact=True)
        assert approx == pytest.approx(exact, rel=0.02)

    def test_bounded_by_one(self):
        assert analysis.false_positive_rate(10_000, 256, 4) <= 1.0

    def test_negative_keys_rejected(self):
        with pytest.raises(ValueError):
            analysis.false_positive_rate(-1, 256, 4)

    def test_more_bits_lower_fpr(self):
        assert analysis.false_positive_rate(38, 512, 4) < analysis.false_positive_rate(
            38, 256, 4
        )


class TestFillRatioAndSetBits:
    def test_fill_ratio_zero_keys(self):
        assert analysis.fill_ratio(0, 256, 4) == 0.0

    def test_fill_ratio_monotone_bounded(self):
        values = [analysis.fill_ratio(n, 256, 4) for n in range(0, 500, 25)]
        assert values == sorted(values)
        assert all(0 <= v < 1 for v in values)

    def test_expected_set_bits_is_m_times_fr(self):
        assert analysis.expected_set_bits(38, 256, 4) == pytest.approx(
            256 * analysis.fill_ratio(38, 256, 4)
        )

    def test_inversion_roundtrip(self):
        """keys_from_fill_ratio inverts Eq. 3."""
        for n in (1, 10, 38, 100):
            fr = analysis.fill_ratio(n, 256, 4)
            assert analysis.keys_from_fill_ratio(fr, 256, 4) == pytest.approx(
                n, rel=1e-9
            )

    def test_inversion_rejects_full_filter(self):
        with pytest.raises(ValueError):
            analysis.keys_from_fill_ratio(1.0, 256, 4)

    def test_matches_simulation(self):
        """Eq. 2 should predict the measured set-bit count of real filters."""
        from repro.core.bloom import BloomFilter

        trials = 30
        total = 0
        for t in range(trials):
            bf = BloomFilter(256, 4, seed=t)
            bf.insert_all(f"key-{t}-{i}" for i in range(38))
            total += len(bf)
        measured = total / trials
        predicted = analysis.expected_set_bits(38, 256, 4)
        assert measured == pytest.approx(predicted, rel=0.05)


class TestExpectedMinCollisions:
    def test_zero_keys(self):
        assert analysis.expected_min_collisions(0, 256, 4) == 0.0

    def test_monotone_in_keys(self):
        values = [
            analysis.expected_min_collisions(n, 256, 4) for n in (0, 10, 50, 200)
        ]
        assert values == sorted(values)

    def test_bounded_by_binomial_mean(self):
        """min of k iid binomials <= each one's mean."""
        n = 100
        assert analysis.expected_min_collisions(n, 256, 4) <= n * 4 / 256 + 1e-9

    def test_matches_monte_carlo(self):
        import numpy as np

        rng = np.random.default_rng(0)
        n, m, k = 60, 256, 4
        samples = rng.binomial(n, k / m, size=(20_000, k)).min(axis=1)
        expected = analysis.expected_min_collisions(n, m, k)
        assert expected == pytest.approx(samples.mean(), abs=0.05)

    def test_binomial_cdf_matches_scipy(self):
        from scipy.stats import binom

        for x, n, p in [(0, 10, 0.1), (3, 10, 0.3), (9, 10, 0.9), (50, 100, 0.5)]:
            ours = analysis._binomial_cdf(x, n, p)
            assert ours == pytest.approx(binom.cdf(x, n, p), rel=1e-9)

    def test_binomial_cdf_edges(self):
        assert analysis._binomial_cdf(-1, 10, 0.5) == 0.0
        assert analysis._binomial_cdf(10, 10, 0.5) == 1.0


class TestRecommendedDecayFactor:
    def test_baseline_without_collisions(self):
        """With no other keys, DF = C/τ + Δ."""
        df = analysis.recommended_decay_factor(600, 50, 0, 256, 4, delta=0.0)
        assert df == pytest.approx(50 / 600)

    def test_collisions_raise_df(self):
        low = analysis.recommended_decay_factor(600, 50, 1, 256, 4)
        high = analysis.recommended_decay_factor(600, 50, 500, 256, 4)
        assert high > low

    def test_delta_added(self):
        base = analysis.recommended_decay_factor(600, 50, 10, 256, 4, delta=0.0)
        assert analysis.recommended_decay_factor(
            600, 50, 10, 256, 4, delta=0.5
        ) == pytest.approx(base + 0.5)

    def test_longer_delay_smaller_df(self):
        """Sec. VI-B: DF decreases when τ increases."""
        short = analysis.recommended_decay_factor(60, 50, 10, 256, 4)
        long = analysis.recommended_decay_factor(1200, 50, 10, 256, 4)
        assert long < short

    def test_paper_scale_sanity(self):
        """For τ = 10 h the paper computes DF ≈ 0.138/min; with the
        trace-dependent ℕ unknown we only check the right ballpark."""
        df = analysis.recommended_decay_factor(600, 50, 40, 256, 4, delta=0.0)
        assert 0.08 < df < 0.4

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            analysis.recommended_decay_factor(0, 50, 10, 256, 4)
        with pytest.raises(ValueError):
            analysis.recommended_decay_factor(600, 0, 10, 256, 4)
        with pytest.raises(ValueError):
            analysis.recommended_decay_factor(600, 50, 10, 256, 4, delta=-1)

    def test_removal_time_simulation(self):
        """A key inserted once, with counters bumped by ℕ other keys'
        A-merges, must be gone within ≈ τ under the Eq. 5 DF."""
        from repro.core.hashing import HashFamily
        from repro.core.tcbf import TemporalCountingBloomFilter

        tau, C, n_keys = 600.0, 50.0, 38
        df = analysis.recommended_decay_factor(tau, C, n_keys, 256, 4, delta=0.0)
        fam = HashFamily(4, 256, seed=33)
        relay = TemporalCountingBloomFilter(
            family=fam, initial_value=C, decay_factor=df
        )
        announcement = TemporalCountingBloomFilter.of(
            ["the-interest"], family=fam, initial_value=C
        )
        relay.a_merge(announcement)
        relay.advance(tau * 1.5)  # generous: E[min] is an expectation
        assert "the-interest" not in relay


class TestExpectedUniqueKeys:
    def test_uniform_closed_form(self):
        """K(1 - (1 - 1/K)^N) for uniform weights."""
        value = analysis.expected_unique_keys(100, total_keys=38)
        assert value == pytest.approx(38 * (1 - (1 - 1 / 38) ** 100))

    def test_weights_equivalent_to_uniform(self):
        uniform = analysis.expected_unique_keys(50, total_keys=10)
        weighted = analysis.expected_unique_keys(50, weights=[1.0] * 10)
        assert uniform == pytest.approx(weighted)

    def test_skewed_weights_fewer_uniques(self):
        """Skew concentrates draws on few keys -> fewer distinct keys."""
        skewed = analysis.expected_unique_keys(
            20, weights=[0.9] + [0.1 / 9] * 9
        )
        uniform = analysis.expected_unique_keys(20, total_keys=10)
        assert skewed < uniform

    def test_bounds(self):
        assert analysis.expected_unique_keys(0, total_keys=38) == 0.0
        assert analysis.expected_unique_keys(10**6, total_keys=38) == pytest.approx(
            38, abs=1e-6
        )

    def test_requires_exactly_one_mode(self):
        with pytest.raises(ValueError):
            analysis.expected_unique_keys(10)
        with pytest.raises(ValueError):
            analysis.expected_unique_keys(10, total_keys=5, weights=[1.0])

    def test_matches_monte_carlo(self):
        import numpy as np

        rng = np.random.default_rng(1)
        weights = np.array([0.4, 0.3, 0.2, 0.1])
        draws = 12
        uniques = [
            len(set(rng.choice(4, size=draws, p=weights))) for _ in range(5000)
        ]
        expected = analysis.expected_unique_keys(draws, weights=list(weights))
        assert expected == pytest.approx(sum(uniques) / len(uniques), abs=0.05)


class TestJointFpr:
    def test_single_filter_matches_eq1(self):
        assert analysis.joint_false_positive_rate(
            [38], 256, 4
        ) == pytest.approx(analysis.false_positive_rate(38, 256, 4))

    def test_more_filters_higher_joint_fpr(self):
        one = analysis.joint_false_positive_rate([19], 256, 4)
        two = analysis.joint_false_positive_rate([19, 19], 256, 4)
        assert two > one

    def test_splitting_keys_reduces_fpr(self):
        """Sec. VI-D's motivation: spreading n keys over h filters
        lowers the joint FPR versus one crowded filter."""
        crowded = analysis.joint_false_positive_rate([76], 256, 4)
        split = analysis.joint_false_positive_rate([38, 38], 256, 4)
        assert split < crowded

    def test_empty_collection(self):
        assert analysis.joint_false_positive_rate([], 256, 4) == 0.0


class TestMemory:
    def test_paper_encoding_sizes_m256(self):
        """m = 256: one-byte locations, so full = 2S, identical = S+1,
        none = S bytes (Sec. VI-C)."""
        assert analysis.filter_memory_bytes(20, 256, "full") == 40
        assert analysis.filter_memory_bytes(20, 256, "identical") == 21
        assert analysis.filter_memory_bytes(20, 256, "none") == 20

    def test_raw_fallback_when_dense(self):
        """A nearly full filter is cheaper as the raw bit-vector."""
        assert analysis.filter_memory_bytes(250, 256, "none") == 256 / 8

    def test_five_bytes_per_key_claim(self):
        """Sec. VII-A: 'at most 5 bytes are used to encode a single key'
        (4 locations + shared-counter overhead amortised)."""
        per_key = analysis.filter_memory_bytes(4, 256, "identical")
        assert per_key <= 5

    def test_multi_filter_memory_grows_with_h(self):
        values = [
            analysis.multi_filter_memory_bytes(h, 38, 256, 4) for h in (1, 2, 4, 8)
        ]
        assert values == sorted(values)

    def test_invalid_counter_mode(self):
        with pytest.raises(ValueError):
            analysis.filter_memory_bytes(10, 256, "bogus")

    def test_raw_string_memory(self):
        assert analysis.raw_string_memory_bytes([7, 12], per_key_overhead=2) == 23

    def test_tcbf_halves_raw_string_memory(self):
        """Sec. IV-B: 'the TCBF uses half of the space used by the raw
        strings in representing interests' — checked with the paper's
        numbers (38 keys, 11.5-byte average)."""
        raw = analysis.raw_string_memory_bytes([11, 12] * 19)  # ~11.5 avg
        set_bits = analysis.expected_set_bits(38, 256, 4)
        compact = analysis.filter_memory_bytes(set_bits, 256, "full")
        assert compact < 0.6 * raw


@given(n=st.integers(0, 500), m=st.sampled_from([64, 128, 256, 512]), k=st.integers(1, 8))
@settings(max_examples=60)
def test_property_fpr_and_fr_in_unit_interval(n, m, k):
    fpr = analysis.false_positive_rate(n, m, k)
    fr = analysis.fill_ratio(n, m, k)
    assert 0.0 <= fpr <= 1.0
    # mathematically FR < 1, but 1 - exp(-kn/m) rounds to exactly 1.0
    # in float for kn/m ≳ 37
    assert 0.0 <= fr <= 1.0


@given(n=st.integers(1, 300))
@settings(max_examples=40)
def test_property_exact_and_approx_agree(n):
    approx = analysis.fill_ratio(n, 256, 4)
    exact = analysis.fill_ratio(n, 256, 4, exact=True)
    assert math.isclose(approx, exact, rel_tol=0.05, abs_tol=0.01)
