"""Tests for the optimal TCBF allocation (paper Sec. VI-D, Eq. 9-10)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import analysis
from repro.core.allocation import TCBFCollection, plan_allocation


class TestPlanAllocation:
    def test_plan_respects_memory_bound(self):
        plan = plan_allocation(100, memory_bound_bytes=500)
        assert plan.memory_bytes < 500

    def test_plan_is_largest_feasible_h(self):
        """Eq. 10: FPR is minimised at the maximum feasible h, so h+1
        must violate the bound."""
        plan = plan_allocation(100, memory_bound_bytes=500)
        above = analysis.multi_filter_memory_bytes(
            plan.num_filters + 1, 100, 256, 4
        )
        assert above >= 500

    def test_more_memory_never_fewer_filters(self):
        h_small = plan_allocation(100, 300).num_filters
        h_large = plan_allocation(100, 1500).num_filters
        assert h_large >= h_small

    def test_joint_fpr_improves_with_memory(self):
        tight = plan_allocation(100, 300)
        roomy = plan_allocation(100, 1500)
        assert roomy.joint_fpr <= tight.joint_fpr

    def test_plan_fpr_matches_eq7(self):
        plan = plan_allocation(80, 600)
        expected = analysis.joint_false_positive_rate(
            [80 / plan.num_filters] * plan.num_filters, 256, 4
        )
        assert plan.joint_fpr == pytest.approx(expected)

    def test_threshold_is_fill_ratio_at_keys_per_filter(self):
        plan = plan_allocation(80, 600)
        assert plan.fill_ratio_threshold == pytest.approx(
            analysis.fill_ratio(plan.keys_per_filter, 256, 4)
        )

    def test_infeasible_bound_raises(self):
        with pytest.raises(ValueError, match="memory bound too small"):
            plan_allocation(100, memory_bound_bytes=10)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            plan_allocation(0, 500)
        with pytest.raises(ValueError):
            plan_allocation(10, 0)

    def test_max_filters_cap(self):
        plan = plan_allocation(10, 10**9, max_filters=16)
        assert plan.num_filters == 16


class TestTCBFCollection:
    def test_starts_with_one_filter(self):
        coll = TCBFCollection(fill_ratio_threshold=0.3)
        assert coll.num_filters == 1

    def test_allocates_new_filter_when_threshold_exceeded(self):
        coll = TCBFCollection(fill_ratio_threshold=0.10, num_bits=64, num_hashes=4)
        coll.insert_all(f"key-{i}" for i in range(20))
        assert coll.num_filters > 1
        # all but the newest filter had crossed the threshold when closed
        for f in coll.filters[:-1]:
            assert f.fill_ratio() > 0.10

    def test_query_finds_keys_in_any_filter(self):
        coll = TCBFCollection(fill_ratio_threshold=0.10, num_bits=64)
        keys = [f"key-{i}" for i in range(25)]
        coll.insert_all(keys)
        assert all(k in coll for k in keys)

    def test_duplicate_insert_is_noop(self):
        coll = TCBFCollection(fill_ratio_threshold=0.3)
        coll.insert("a")
        bits = len(coll)
        coll.insert("a")
        assert len(coll) == bits

    def test_max_filters_respected(self):
        coll = TCBFCollection(
            fill_ratio_threshold=0.05, num_bits=64, max_filters=2
        )
        coll.insert_all(f"key-{i}" for i in range(50))
        assert coll.num_filters == 2

    def test_min_counter_max_across_filters(self):
        coll = TCBFCollection(fill_ratio_threshold=0.9, initial_value=50)
        coll.insert("a")
        assert coll.min_counter("a") == 50

    def test_advance_decays_and_drops_empty_filters(self):
        coll = TCBFCollection(
            fill_ratio_threshold=0.05,
            num_bits=64,
            initial_value=10,
            decay_factor=1.0,
        )
        coll.insert_all(f"key-{i}" for i in range(30))
        assert coll.num_filters > 1
        coll.advance(11.0)
        assert coll.num_filters == 1  # the fresh insert target survives
        assert len(coll) == 0

    def test_memory_accounting(self):
        coll = TCBFCollection(fill_ratio_threshold=0.9, num_bits=256)
        coll.insert("a")
        assert coll.memory_bytes() == analysis.filter_memory_bytes(
            len(coll.filters[0]), 256, "full"
        )

    def test_from_plan_enforces_cap_and_threshold(self):
        plan = plan_allocation(100, 500)
        coll = TCBFCollection.from_plan(plan)
        assert coll.max_filters == plan.num_filters
        assert coll.fill_ratio_threshold == plan.fill_ratio_threshold

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            TCBFCollection(fill_ratio_threshold=0.0)
        with pytest.raises(ValueError):
            TCBFCollection(fill_ratio_threshold=1.5)

    def test_fill_ratios_reported_per_filter(self):
        coll = TCBFCollection(fill_ratio_threshold=0.10, num_bits=64)
        coll.insert_all(f"key-{i}" for i in range(20))
        assert len(coll.fill_ratios()) == coll.num_filters


@given(
    total_keys=st.integers(1, 300),
    memory=st.integers(100, 5000),
)
@settings(max_examples=50)
def test_property_plan_always_feasible_and_maximal(total_keys, memory):
    try:
        plan = plan_allocation(total_keys, memory)
    except ValueError:
        # the bound was genuinely infeasible for even one filter
        assert analysis.multi_filter_memory_bytes(1, total_keys, 256, 4) >= memory
        return
    assert plan.memory_bytes < memory
    assert 0.0 <= plan.joint_fpr <= 1.0
    assert plan.num_filters >= 1


@given(keys=st.sets(st.text(min_size=1, max_size=8), max_size=40))
@settings(max_examples=40)
def test_property_collection_never_false_negative(keys):
    coll = TCBFCollection(fill_ratio_threshold=0.15, num_bits=64, num_hashes=3)
    coll.insert_all(keys)
    assert all(k in coll for k in keys)
