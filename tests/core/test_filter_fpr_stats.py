"""Statistical FPR regression tests (pinned seeds, dedicated slow CI leg).

Empirically measures false-positive rates on the 38-key Twitter trend
universe (Table II workload) against the paper's analytic models:

* Eq. 1 / Eq. 3 for a single TCBF,
* Eq. 7 joint FPR for the Sec. VI-C multi-filter allocation,
* the occupancy-grid model ``fill^k`` for the 2D counting filter,
* and the retouched filter's guaranteed FPR reduction.

All randomness is pinned (fixed hash seed, deterministic probe set), so
the measured counts are exactly reproducible; the binomial tolerance
windows only express how far the *analytic* prediction may sit from the
pinned measurement before the model itself is wrong.
"""

import math

import numpy as np
import pytest

from repro.core import HashFamily, TemporalCountingBloomFilter, analysis
from repro.core.allocation import TCBFCollection, plan_allocation
from repro.core.countbf import CountBF2D
from repro.core.retouched import RetouchedTCBF, plan_retouch
from repro.workload.keys import twitter_trends_2009

pytestmark = pytest.mark.slow

SEED = 0x1B5B
NUM_BITS = 256
NUM_HASHES = 4
FAMILY = HashFamily(NUM_HASHES, NUM_BITS, SEED)
UNIVERSE = list(twitter_trends_2009().keys)
NUM_PROBES = 20_000
PROBES = [f"probe-{i:05d}" for i in range(NUM_PROBES)]


def binomial_window(probabilities, sigmas: float = 5.0) -> float:
    """Half-width of a ±sigmas window around sum(p_i) successes."""
    variance = float(sum(p * (1.0 - p) for p in probabilities))
    return sigmas * math.sqrt(variance) + 2.0


def distinct_bits(family: HashFamily, key: str) -> int:
    return len(set(int(p) for p in family.positions(key)))


def measure_fp_count(filt, probes=PROBES) -> int:
    return int(np.count_nonzero(np.asarray(filt.query_batch(probes), dtype=bool)))


def test_universe_is_the_38_key_table_ii_workload():
    assert len(UNIVERSE) == 38
    assert not set(PROBES) & set(UNIVERSE)


@pytest.mark.parametrize("backend", ["dict", "array"])
def test_tcbf_fpr_matches_eq1(backend):
    """Measured TCBF FPR sits inside the Eq. 1 binomial window."""
    filt = TemporalCountingBloomFilter(family=FAMILY, backend=backend)
    filt.insert_batch(UNIVERSE)

    observed_fill = filt.fill_ratio()
    # Eq. 3: the realised fill must be binomially consistent with the
    # analytic expectation over the filter's own bits.
    expected_fill = analysis.fill_ratio(len(UNIVERSE), NUM_BITS, NUM_HASHES, exact=True)
    fill_sigma = math.sqrt(expected_fill * (1 - expected_fill) / NUM_BITS)
    assert abs(observed_fill - expected_fill) <= 5.0 * fill_sigma + 2.0 / NUM_BITS

    # Eq. 1 (conditioned on the realised fill): P(probe FP) = FR^d with
    # d the probe's distinct bit count.
    per_probe = [observed_fill ** distinct_bits(FAMILY, p) for p in PROBES]
    predicted = sum(per_probe)
    measured = measure_fp_count(filt)
    assert abs(measured - predicted) <= binomial_window(per_probe)

    # And the unconditional analytic rate is in the same ballpark.
    analytic = analysis.false_positive_rate(
        len(UNIVERSE), NUM_BITS, NUM_HASHES, exact=True
    )
    assert measured / NUM_PROBES == pytest.approx(analytic, rel=0.35)


def test_dict_and_array_backends_report_identical_fp_sets():
    """Backend choice is an implementation detail: same FPs, bit for bit."""
    filts = {}
    for backend in ("dict", "array"):
        filt = TemporalCountingBloomFilter(family=FAMILY, backend=backend)
        filt.insert_batch(UNIVERSE)
        filts[backend] = np.asarray(filt.query_batch(PROBES), dtype=bool)
    np.testing.assert_array_equal(filts["dict"], filts["array"])


def test_multi_filter_joint_fpr_matches_eq7():
    """Measured collection FPR sits inside the Eq. 7 binomial window.

    Run at a 240-byte bound (h=2, ~19 keys per filter): the regime
    where Eq. 7's independent-bits assumption holds.  At much lower
    per-filter fill the double-hashing construction's full-progression
    collisions (probe sharing both base hashes with an inserted key)
    become the dominant FP source and the idealised model undershoots —
    see ``test_countbf_fpr_matches_grid_occupancy_model`` for how that
    floor is bounded instead.
    """
    plan = plan_allocation(len(UNIVERSE), 240.0, NUM_BITS, NUM_HASHES)
    assert plan.num_filters == 2, "240-byte bound should split into two filters"
    collection = TCBFCollection.from_plan(plan, family=FAMILY)
    collection.insert_all(UNIVERSE)

    fills = collection.fill_ratios()
    assert len(fills) >= 2
    per_probe = []
    for probe in PROBES:
        d = distinct_bits(FAMILY, probe)
        miss_all = 1.0
        for fr in fills:
            miss_all *= 1.0 - fr**d
        per_probe.append(1.0 - miss_all)
    predicted = sum(per_probe)
    measured = measure_fp_count(collection)
    assert abs(measured - predicted) <= binomial_window(per_probe)

    # Splitting the universe across h filters must beat the single-TCBF
    # joint rate analytically (the whole point of Sec. VI-C).
    single = analysis.false_positive_rate(len(UNIVERSE), NUM_BITS, NUM_HASHES)
    assert plan.joint_fpr < single


def test_countbf_fpr_matches_grid_occupancy_model():
    """Measured 2D-grid FPR is bracketed by the fill^k occupancy model.

    The row/col coordinates come from double-hashed families over tiny
    alphabets (16 rows x 16 cols), so a probe that shares base hashes
    with an inserted key collides on *every* cell at once.  That
    correlation can only push the measured rate *above* the
    independent-cells prediction, and empirically stays well under 2.5x
    at Table II occupancy — so the model brackets the measurement from
    below (binomial window) and a documented 2.5x correlation ceiling
    brackets it from above.
    """
    filt = CountBF2D(num_bits=NUM_BITS, num_hashes=NUM_HASHES, rows=16, seed=SEED)
    for key in UNIVERSE:
        filt.insert(key)

    fill = filt.fill_ratio()
    assert 0.0 < fill < 1.0
    per_probe = [fill ** len(filt._cells(p)) for p in PROBES]
    predicted = sum(per_probe)
    measured = measure_fp_count(filt)
    window = binomial_window(per_probe)
    assert measured >= predicted - window
    assert measured <= 2.5 * predicted + window

    # Model-direction sanity: a larger grid must measurably cut the FPR.
    big = CountBF2D(num_bits=4 * NUM_BITS, num_hashes=NUM_HASHES, rows=32, seed=SEED)
    for key in UNIVERSE:
        big.insert(key)
    assert measure_fp_count(big) < measured / 2


def test_retouched_strictly_reduces_measured_fpr():
    """Lineage-planned retouching lowers the measured FPR, no hidden FNs."""
    baseline = TemporalCountingBloomFilter(family=FAMILY, backend="array")
    baseline.insert_batch(UNIVERSE)
    baseline_hits = np.asarray(baseline.query_batch(PROBES), dtype=bool)
    fp_probes = [p for p, hit in zip(PROBES, baseline_hits) if hit]
    assert fp_probes, "pinned seed must yield baseline false positives"

    plan = plan_retouch(fp_probes[:40], UNIVERSE, FAMILY, max_sacrifice=2)
    assert plan.neutralised_keys, "planner should neutralise at least one FP"

    retouched = RetouchedTCBF(family=FAMILY, cleared_bits=plan.cleared_bits)
    retouched.insert_batch(UNIVERSE)

    measured_base = int(np.count_nonzero(baseline_hits))
    measured_retouched = measure_fp_count(retouched)
    assert measured_retouched < measured_base
    # Each neutralised probe is individually dead...
    assert not any(retouched.query(p) for p in plan.neutralised_keys)
    # ...and every unsacrificed interest still matches (no silent FNs).
    for key in UNIVERSE:
        if key not in plan.sacrificed_keys:
            assert retouched.query(key)
    assert len(plan.sacrificed_keys) <= 2
