"""Unit tests for the Retouched TCBF and the lineage-driven planner."""

import pytest

from repro.core import HashFamily, TemporalCountingBloomFilter
from repro.core.retouched import RetouchedTCBF, RetouchPlan, plan_retouch

FAMILY = HashFamily(4, 256, 0xBEEF)
WANTED = [f"wanted-{i}" for i in range(10)]


def bits_of(key):
    return set(int(p) for p in FAMILY.positions(key))


class TestRetouchedTCBF:
    def test_no_cleared_bits_behaves_like_tcbf(self):
        plain = TemporalCountingBloomFilter(family=FAMILY)
        retouched = RetouchedTCBF(family=FAMILY)
        plain.insert_batch(WANTED)
        retouched.insert_batch(WANTED)
        probes = WANTED + [f"probe-{i}" for i in range(200)]
        assert retouched.query_batch(probes).tolist() == plain.query_batch(probes).tolist()

    def test_cleared_bits_stay_zero_after_insert(self):
        cleared = sorted(bits_of(WANTED[0]))[:2]
        filt = RetouchedTCBF(family=FAMILY, cleared_bits=cleared)
        filt.insert_batch(WANTED)
        for bit in cleared:
            assert filt._store.get(bit) == 0.0
        # The key whose bits were cleared no longer matches...
        assert not filt.query(WANTED[0])
        # ...but keys with disjoint bit sets are untouched.
        for key in WANTED[1:]:
            if not bits_of(key) & set(cleared):
                assert filt.query(key)

    def test_cleared_bits_survive_merge(self):
        cleared = sorted(bits_of(WANTED[0]))[:1]
        filt = RetouchedTCBF(family=FAMILY, cleared_bits=cleared)
        operand = TemporalCountingBloomFilter(family=FAMILY)
        operand.insert_batch(WANTED)
        filt.a_merge(operand)
        assert filt._store.get(cleared[0]) == 0.0
        filt2 = RetouchedTCBF(family=FAMILY, cleared_bits=cleared)
        filt2.m_merge(operand)
        assert filt2._store.get(cleared[0]) == 0.0

    def test_copy_preserves_cleared_bits(self):
        filt = RetouchedTCBF(family=FAMILY, cleared_bits=[3, 17])
        filt.insert_batch(WANTED)
        clone = filt.copy()
        assert isinstance(clone, RetouchedTCBF)
        assert clone.cleared_bits == frozenset({3, 17})
        clone.insert("another")
        assert clone._store.get(3) == 0.0
        assert clone._store.get(17) == 0.0

    def test_out_of_range_cleared_bit_rejected(self):
        with pytest.raises(ValueError):
            RetouchedTCBF(family=FAMILY, cleared_bits=[256])
        with pytest.raises(ValueError):
            RetouchedTCBF(family=FAMILY, cleared_bits=[-1])


class TestRetouchPlanner:
    def test_free_bit_clearing_neutralises_without_sacrifice(self):
        """An FP key with a bit outside the wanted union costs nothing."""
        # Find an fp key with at least one bit disjoint from WANTED's union.
        union = set()
        for key in WANTED:
            union |= bits_of(key)
        fp_key = next(
            f"fp-{i}" for i in range(1000) if bits_of(f"fp-{i}") - union
        )
        plan = plan_retouch([fp_key], WANTED, FAMILY, max_sacrifice=0)
        assert fp_key in plan.neutralised_keys
        assert not plan.sacrificed_keys
        assert plan.cleared_bits and plan.cleared_bits <= bits_of(fp_key) - union

    def test_zero_budget_skips_costly_keys(self):
        """With no sacrifice budget, fully-covered FP keys stay live."""
        union = set()
        for key in WANTED:
            union |= bits_of(key)
        covered = [f"fp-{i}" for i in range(2000) if not (bits_of(f"fp-{i}") - union)]
        assert covered, "need at least one fully-covered fp key"
        plan = plan_retouch(covered[:1], WANTED, FAMILY, max_sacrifice=0)
        assert not plan.neutralised_keys
        assert not plan.cleared_bits
        assert plan.is_empty()

    def test_budget_buys_neutralisation_of_covered_keys(self):
        union = set()
        for key in WANTED:
            union |= bits_of(key)
        covered = [f"fp-{i}" for i in range(2000) if not (bits_of(f"fp-{i}") - union)]
        plan = plan_retouch(covered[:1], WANTED, FAMILY, max_sacrifice=3)
        assert covered[0] in plan.neutralised_keys
        assert plan.sacrificed_keys
        assert len(plan.sacrificed_keys) <= 3
        # Sacrifice accounting is honest: every protected key that uses
        # a cleared bit is listed as sacrificed.
        for key in WANTED:
            if bits_of(key) & plan.cleared_bits:
                assert key in plan.sacrificed_keys

    def test_protected_fp_keys_are_never_targeted(self):
        plan = plan_retouch(WANTED[:3], WANTED, FAMILY, max_sacrifice=10)
        assert plan.is_empty()

    def test_max_cleared_caps_bits(self):
        fp_keys = [f"fp-{i}" for i in range(50)]
        plan = plan_retouch(fp_keys, WANTED, FAMILY, max_sacrifice=0, max_cleared=2)
        assert len(plan.cleared_bits) <= 2

    def test_spec_params_round_trip(self):
        plan = RetouchPlan(frozenset({17, 3}), frozenset(), frozenset({"x"}))
        assert plan.spec_params() == "clear=3+17"
        assert not plan.is_empty()
        empty = RetouchPlan(frozenset(), frozenset(), frozenset())
        assert empty.is_empty()
        assert empty.spec_params() == ""

    def test_determinism(self):
        fp_keys = [f"fp-{i}" for i in range(40)]
        a = plan_retouch(fp_keys, WANTED, FAMILY, max_sacrifice=2)
        b = plan_retouch(reversed(fp_keys), set(WANTED), FAMILY, max_sacrifice=2)
        assert a == b
