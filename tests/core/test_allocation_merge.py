"""Tests for the TCBFCollection merge interface (Sec. VI-D in the protocol)."""

import pytest

from repro.core.allocation import TCBFCollection
from repro.core.hashing import HashFamily
from repro.core.tcbf import TemporalCountingBloomFilter


@pytest.fixture
def family():
    return HashFamily(4, 64, seed=41)


def announcement(family, keys, value=50.0, time=0.0):
    return TemporalCountingBloomFilter.of(
        keys, family=family, initial_value=value, time=time
    )


def collection(family, threshold=0.5, **kwargs):
    return TCBFCollection(
        fill_ratio_threshold=threshold,
        family=family,
        initial_value=50.0,
        **kwargs,
    )


class TestAMerge:
    def test_a_merge_into_current(self, family):
        coll = collection(family)
        coll.a_merge(announcement(family, ["a"]))
        assert "a" in coll
        assert coll.min_counter("a") == 50.0

    def test_a_merge_reinforces(self, family):
        coll = collection(family)
        coll.a_merge(announcement(family, ["a"]))
        coll.a_merge(announcement(family, ["a"]))
        assert coll.min_counter("a") == 100.0

    def test_a_merge_allocates_when_full(self, family):
        coll = collection(family, threshold=0.15)
        for i in range(12):
            coll.a_merge(announcement(family, [f"key-{i}"]))
        assert coll.num_filters > 1
        assert all(f"key-{i}" in coll for i in range(12))

    def test_a_merge_respects_cap(self, family):
        coll = collection(family, threshold=0.05, max_filters=2)
        for i in range(20):
            coll.a_merge(announcement(family, [f"key-{i}"]))
        assert coll.num_filters == 2

    def test_a_merge_accepts_collection(self, family):
        source = collection(family, threshold=0.15)
        for i in range(10):
            source.a_merge(announcement(family, [f"key-{i}"]))
        target = collection(family, threshold=0.15)
        target.a_merge(source)
        assert all(f"key-{i}" in target for i in range(10))


class TestMMerge:
    def test_m_merge_takes_max(self, family):
        coll = collection(family)
        coll.a_merge(announcement(family, ["a"]))
        coll.a_merge(announcement(family, ["a"]))  # counters 100
        peer = announcement(family, ["a"], value=60.0)
        coll.m_merge(peer)
        assert coll.min_counter("a") == 100.0  # max kept

    def test_m_merge_imports_unknown_keys(self, family):
        coll = collection(family)
        coll.m_merge(announcement(family, ["fresh"]))
        assert "fresh" in coll

    def test_m_merge_collection_merges_each_filter(self, family):
        peer = collection(family, threshold=0.1)
        for i in range(10):
            peer.a_merge(announcement(family, [f"key-{i}"]))
        assert peer.num_filters > 1
        coll = collection(family, threshold=0.1)
        coll.m_merge(peer)
        assert all(f"key-{i}" in coll for i in range(10))

    def test_m_merge_skips_empty_filters(self, family):
        peer = collection(family)
        coll = collection(family)
        coll.m_merge(peer)  # peer is empty
        assert coll.is_empty()


class TestRelayInterface:
    def test_preference_matches_single_filter_semantics(self, family):
        a = collection(family)
        b = collection(family)
        a.a_merge(announcement(family, ["k"]))
        a.a_merge(announcement(family, ["k"]))
        b.a_merge(announcement(family, ["k"]))
        assert a.preference("k", b) == 50.0
        assert b.preference("k", a) == -50.0

    def test_preference_when_other_empty(self, family):
        a = collection(family)
        a.a_merge(announcement(family, ["k"]))
        assert a.preference("k", collection(family)) == 50.0

    def test_copy_is_deep(self, family):
        coll = collection(family)
        coll.a_merge(announcement(family, ["k"]))
        clone = coll.copy()
        clone.a_merge(announcement(family, ["k"]))
        assert coll.min_counter("k") == 50.0
        assert clone.min_counter("k") == 100.0

    def test_time_and_advance(self, family):
        coll = collection(family, decay_factor=1.0)
        coll.a_merge(announcement(family, ["k"]))
        assert coll.time == 0.0
        coll.advance(10.0)
        assert coll.time == 10.0
        assert coll.min_counter("k") == 40.0

    def test_is_empty(self, family):
        coll = collection(family)
        assert coll.is_empty()
        coll.a_merge(announcement(family, ["k"]))
        assert not coll.is_empty()


class TestProtocolIntegration:
    def test_bsub_runs_with_multi_filter_relays(self):
        from repro.experiments import ExperimentConfig, run_experiment
        from repro.traces.synthetic import haggle_like

        trace = haggle_like(scale=0.02, seed=9)
        single = run_experiment(
            trace, "B-SUB",
            ExperimentConfig(ttl_min=300, min_rate_per_s=1 / 7200.0),
        )
        multi = run_experiment(
            trace, "B-SUB",
            ExperimentConfig(
                ttl_min=300,
                min_rate_per_s=1 / 7200.0,
                relay_fill_threshold=0.25,
                relay_max_filters=4,
            ),
        )
        assert multi.summary.num_messages == single.summary.num_messages
        # multi-filter relays must not collapse delivery
        assert (
            multi.summary.num_intended_deliveries
            >= 0.5 * single.summary.num_intended_deliveries
        )

    def test_node_state_builds_collection_relay(self, family):
        from repro.pubsub.node import BsubNodeState

        state = BsubNodeState(
            node_id=0,
            interests=frozenset({"a"}),
            family=family,
            initial_value=50.0,
            decay_factor=0.0,
            copy_limit=3,
            relay_fill_threshold=0.3,
            relay_max_filters=3,
        )
        assert isinstance(state.relay, TCBFCollection)
        assert state.relay.max_filters == 3
