"""Cross-filter conformance suite (the relay-filter contract).

One test definition, N backends: every backend registered in
:mod:`repro.core.filter_zoo` is subjected to the same insert/query,
merge, decay, batch-vs-scalar, wire round-trip, and copy-independence
laws via a single parametrized fixture.  Registering a new filter
backend automatically applies the whole matrix; conversely,
``test_conformance_matrix_covers_registry`` fails if the registry and
the matrix ever diverge.
"""

import numpy as np
import pytest

from repro.core import HashFamily
from repro.core.filter_zoo import (
    FILTER_BACKENDS,
    decode_filter,
    encode_filter,
    load_keys,
    make_relay_filter,
    registered_backends,
)
from repro.pubsub.adaptive import AdaptiveDecayConfig, AdaptiveDecayController

#: The conformance matrix — deliberately spelled out so that adding a
#: backend to the registry without thinking about conformance fails
#: the covers-registry test below rather than silently skipping it.
CONFORMANCE_MATRIX = ("dict", "array", "multi", "retouched", "countbf")

GEOM = dict(num_bits=256, num_hashes=4, seed=0x5B5B)
INITIAL = 50.0
KEYS = [f"topic-{i:02d}" for i in range(12)]
HALF_A, HALF_B = KEYS[:6], KEYS[6:]
PROBES = [f"absent-{i:02d}" for i in range(10)]
FAMILY = HashFamily(GEOM["num_hashes"], GEOM["num_bits"], GEOM["seed"])

#: Wire counters are 1 byte (quantised); worst-case half-step for the
#: counter magnitudes these tests produce (peaks <= 2C).
WIRE_ATOL = 2 * INITIAL / 255.0 * 0.51 + 1e-9


def fresh(backend: str, df: float = 0.0, time: float = 0.0):
    return make_relay_filter(
        backend,
        family=FAMILY,
        initial_value=INITIAL,
        decay_factor=df,
        time=time,
    )


def loaded(backend: str, keys=KEYS, df: float = 0.0):
    filt = fresh(backend, df=df)
    load_keys(filt, keys)
    return filt


@pytest.fixture(params=CONFORMANCE_MATRIX)
def backend(request):
    return request.param


def test_conformance_matrix_covers_registry():
    """Registry and conformance matrix must list the same backends."""
    assert tuple(registered_backends()) == CONFORMANCE_MATRIX
    assert set(FILTER_BACKENDS) == set(CONFORMANCE_MATRIX)


class TestEmptyAndLoad:
    def test_fresh_is_empty(self, backend):
        filt = fresh(backend)
        assert filt.is_empty()
        assert len(filt) == 0
        assert not any(filt.query_batch(KEYS))
        assert filt.min_counter(KEYS[0]) == 0.0

    def test_loaded_queries_true(self, backend):
        filt = loaded(backend)
        assert all(filt.query_batch(KEYS))
        assert all(filt.query(k) for k in KEYS)
        assert not filt.is_empty()
        assert len(filt) > 0
        for key in KEYS:
            assert filt.min_counter(key) >= INITIAL - 1e-9

    def test_fill_ratio_observable(self, backend):
        filt = loaded(backend)
        ratios = (
            filt.fill_ratios()
            if hasattr(filt, "fill_ratios")
            else [filt.fill_ratio()]
        )
        assert ratios
        for ratio in ratios:
            assert 0.0 <= ratio <= 1.0
        assert sum(ratios) > 0.0


class TestBatchEqualsScalar:
    def test_query_batch(self, backend):
        filt = loaded(backend, HALF_A)
        mixed = HALF_A + PROBES + HALF_B
        batch = filt.query_batch(mixed)
        scalar = [filt.query(k) for k in mixed]
        assert [bool(b) for b in batch] == scalar

    def test_min_counter_batch(self, backend):
        filt = loaded(backend, HALF_A)
        mixed = HALF_A + PROBES
        batch = filt.min_counter_batch(mixed)
        scalar = [filt.min_counter(k) for k in mixed]
        np.testing.assert_allclose(np.asarray(batch), scalar, rtol=0, atol=1e-12)

    def test_preference_batch(self, backend):
        mine = loaded(backend, KEYS)
        peer = loaded(backend, HALF_A)
        mixed = KEYS + PROBES
        batch = mine.preference_batch(mixed, peer)
        scalar = [mine.preference(k, peer) for k in mixed]
        np.testing.assert_allclose(np.asarray(batch), scalar, rtol=0, atol=1e-12)

    def test_preference_zero_rule(self, backend):
        """Sec. IV-A: b == 0 → preference is a, not a - 0 computed oddly."""
        mine = loaded(backend, KEYS)
        empty_peer = fresh(backend)
        for key in KEYS:
            assert mine.preference(key, empty_peer) == mine.min_counter(key)
        # Against itself every preference is exactly zero.
        np.testing.assert_allclose(
            np.asarray(mine.preference_batch(KEYS, mine)), 0.0, atol=1e-12
        )


class TestDecayLaws:
    def test_advance_decays_min_counters_linearly(self, backend):
        filt = loaded(backend, KEYS, df=0.1)
        before = np.asarray(filt.min_counter_batch(KEYS), dtype=float)
        filt.advance(100.0)  # 100 s at 0.1/s → counters shed exactly 10
        after = np.asarray(filt.min_counter_batch(KEYS), dtype=float)
        np.testing.assert_allclose(after, np.maximum(0.0, before - 10.0), atol=1e-9)

    def test_advance_far_empties(self, backend):
        filt = loaded(backend, KEYS, df=0.1)
        filt.advance(1e9)
        assert filt.is_empty()
        assert not any(filt.query_batch(KEYS))

    def test_advance_backwards_raises(self, backend):
        filt = loaded(backend, KEYS, df=0.1)
        filt.advance(500.0)
        with pytest.raises(ValueError):
            filt.advance(100.0)

    def test_zero_df_never_decays(self, backend):
        filt = loaded(backend, KEYS, df=0.0)
        filt.advance(1e9)
        assert all(filt.query_batch(KEYS))

    def test_controller_apply_retunes_decay(self, backend):
        """The Sec. VI-B controller can retarget any zoo relay's DF."""
        filt = loaded(backend, KEYS, df=0.0)
        controller = AdaptiveDecayController(
            AdaptiveDecayConfig(), initial_df_per_s=0.5
        )
        controller._apply(filt)
        assert filt.decay_factor == 0.5
        before = float(np.min(np.asarray(filt.min_counter_batch(KEYS))))
        filt.advance(10.0)  # 10 s at 0.5/s → shed 5
        after = float(np.min(np.asarray(filt.min_counter_batch(KEYS))))
        assert after == pytest.approx(max(0.0, before - 5.0), abs=1e-9)


class TestMergeLaws:
    def test_a_merge_unions_keys(self, backend):
        mine = loaded(backend, HALF_A)
        peer = loaded(backend, HALF_B)
        mine.a_merge(peer)
        assert all(mine.query_batch(KEYS))
        for key in HALF_B:
            assert mine.min_counter(key) >= INITIAL - 1e-9

    def test_a_merge_reinforces(self, backend):
        """Repeat announcements must not lower any counter (Sec. V-C)."""
        mine = loaded(backend, HALF_A)
        before = np.asarray(mine.min_counter_batch(HALF_A), dtype=float)
        mine.a_merge(loaded(backend, HALF_A))
        after = np.asarray(mine.min_counter_batch(HALF_A), dtype=float)
        assert (after >= before - 1e-9).all()

    def test_m_merge_never_decreases_counters(self, backend):
        mine = loaded(backend, HALF_A)
        peer = loaded(backend, KEYS)
        before = np.asarray(mine.min_counter_batch(KEYS), dtype=float)
        peer_minima = np.asarray(peer.min_counter_batch(KEYS), dtype=float)
        mine.m_merge(peer)
        after = np.asarray(mine.min_counter_batch(KEYS), dtype=float)
        assert (after >= before - 1e-9).all()
        # Max semantics: the merged view is at least as strong as the peer.
        assert (after >= peer_minima - 1e-9).all()

    def test_m_merge_self_copy_is_idempotent(self, backend):
        """Max-merging one's own snapshot changes nothing (Fig. 6 fix)."""
        mine = loaded(backend, KEYS)
        before = np.asarray(mine.min_counter_batch(KEYS), dtype=float)
        mine.m_merge(mine.copy())
        after = np.asarray(mine.min_counter_batch(KEYS), dtype=float)
        np.testing.assert_allclose(after, before, atol=1e-9)


class TestWireRoundTrip:
    def test_round_trip_preserves_queries_and_counters(self, backend):
        filt = loaded(backend, KEYS, df=0.25)
        frame = encode_filter(filt)
        assert isinstance(frame, bytes) and frame
        decoded = decode_filter(
            frame,
            family=FAMILY,
            initial_value=INITIAL,
            decay_factor=0.25,
            time=filt.time,
        )
        assert type(decoded) is type(filt)
        mixed = KEYS + PROBES
        assert [bool(b) for b in decoded.query_batch(mixed)] == [
            bool(b) for b in filt.query_batch(mixed)
        ]
        np.testing.assert_allclose(
            np.asarray(decoded.min_counter_batch(KEYS), dtype=float),
            np.asarray(filt.min_counter_batch(KEYS), dtype=float),
            atol=WIRE_ATOL,
        )

    def test_decoded_filter_keeps_decaying(self, backend):
        filt = loaded(backend, KEYS, df=0.1)
        decoded = decode_filter(
            encode_filter(filt),
            family=FAMILY,
            initial_value=INITIAL,
            decay_factor=0.1,
            time=filt.time,
        )
        decoded.advance(1e9)
        assert decoded.is_empty()

    def test_truncated_frame_raises(self, backend):
        frame = encode_filter(loaded(backend, KEYS))
        with pytest.raises(ValueError):
            decode_filter(frame[: max(1, len(frame) // 3)], family=FAMILY)


class TestCopySemantics:
    def test_copy_is_independent(self, backend):
        filt = loaded(backend, KEYS, df=0.1)
        clone = filt.copy()
        filt.advance(1e9)
        assert filt.is_empty()
        assert all(clone.query_batch(KEYS))
        assert clone.min_counter(KEYS[0]) >= INITIAL - 1e-9

    def test_copy_preserves_clock_and_df(self, backend):
        filt = loaded(backend, KEYS, df=0.25)
        filt.advance(40.0)
        clone = filt.copy()
        assert clone.time == filt.time
        assert clone.decay_factor == filt.decay_factor
        np.testing.assert_allclose(
            np.asarray(clone.min_counter_batch(KEYS), dtype=float),
            np.asarray(filt.min_counter_batch(KEYS), dtype=float),
            atol=1e-12,
        )
