"""Unit tests for the filter registry, spec grammar, and wire envelope."""

import pytest

from repro.core import HashFamily
from repro.core.allocation import TCBFCollection
from repro.core.countbf import CountBF2D
from repro.core.filter_zoo import (
    FILTER_BACKENDS,
    decode_filter,
    encode_filter,
    load_keys,
    make_relay_filter,
    parse_filter_spec,
    registered_backends,
)
from repro.core.retouched import RetouchedTCBF
from repro.core.tcbf import TemporalCountingBloomFilter

FAMILY = HashFamily(4, 256, 0xF17E)
KEYS = [f"k{i}" for i in range(8)]


class TestRegistry:
    def test_registry_metadata_complete(self):
        assert registered_backends() == tuple(FILTER_BACKENDS)
        for name, spec in FILTER_BACKENDS.items():
            assert spec.name == name
            assert spec.summary
            assert callable(spec.factory)
            for param, doc in spec.params:
                assert param and doc

    def test_factories_build_expected_types(self):
        expected = {
            "dict": TemporalCountingBloomFilter,
            "array": TemporalCountingBloomFilter,
            "multi": TCBFCollection,
            "retouched": RetouchedTCBF,
            "countbf": CountBF2D,
        }
        for name, cls in expected.items():
            filt = make_relay_filter(name, family=FAMILY)
            assert type(filt) is cls, name


class TestSpecGrammar:
    def test_bare_name(self):
        assert parse_filter_spec("array") == ("array", {})
        assert parse_filter_spec(" countbf ") == ("countbf", {})

    def test_params(self):
        name, params = parse_filter_spec("multi:keys=38,mem=384")
        assert name == "multi"
        assert params == {"keys": "38", "mem": "384"}
        name, params = parse_filter_spec("retouched:clear=3+17")
        assert params == {"clear": "3+17"}

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown filter backend"):
            parse_filter_spec("cuckoo")

    def test_unknown_param(self):
        with pytest.raises(ValueError, match="does not accept parameter"):
            parse_filter_spec("countbf:cols=9")

    def test_malformed_token(self):
        with pytest.raises(ValueError):
            parse_filter_spec("multi:keys")
        with pytest.raises(ValueError):
            parse_filter_spec("")

    def test_make_with_params(self):
        multi = make_relay_filter("multi:keys=16,mem=512", family=FAMILY)
        assert isinstance(multi, TCBFCollection)
        retouched = make_relay_filter("retouched:clear=3+17", family=FAMILY)
        assert retouched.cleared_bits == frozenset({3, 17})
        grid = make_relay_filter("countbf:rows=8", family=FAMILY)
        assert grid.rows == 8

    def test_multi_threshold_override(self):
        filt = make_relay_filter("multi:threshold=0.25", family=FAMILY)
        assert isinstance(filt, TCBFCollection)
        assert filt.fill_ratio_threshold == pytest.approx(0.25)

    def test_explicit_family_wins(self):
        filt = make_relay_filter("array", family=FAMILY, num_bits=64, num_hashes=2)
        assert filt.family.num_bits == FAMILY.num_bits
        assert filt.family.num_hashes == FAMILY.num_hashes


class TestLoadKeys:
    @pytest.mark.parametrize("backend", registered_backends())
    def test_load_keys_uses_best_available_hook(self, backend):
        filt = make_relay_filter(backend, family=FAMILY)
        load_keys(filt, KEYS)
        assert all(bool(b) for b in filt.query_batch(KEYS))


class TestWireEnvelope:
    def test_empty_payload_rejected(self):
        with pytest.raises(ValueError):
            decode_filter(b"", family=FAMILY)

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError, match="tag"):
            decode_filter(b"\x7f" + b"\x00" * 16, family=FAMILY)

    @pytest.mark.parametrize("backend", registered_backends())
    def test_corrupt_tail_rejected(self, backend):
        filt = make_relay_filter(backend, family=FAMILY)
        load_keys(filt, KEYS)
        frame = encode_filter(filt)
        with pytest.raises(ValueError):
            decode_filter(frame + b"\x00\x01\x02", family=FAMILY)

    def test_retouched_tag_precedes_plain_tcbf(self):
        """Subclass check ordering: retouched must not encode as 0x10."""
        filt = make_relay_filter("retouched:clear=5", family=FAMILY)
        load_keys(filt, KEYS)
        frame = encode_filter(filt)
        decoded = decode_filter(frame, family=FAMILY)
        assert isinstance(decoded, RetouchedTCBF)
        assert decoded.cleared_bits == frozenset({5})

    def test_decoded_collection_preserves_structure(self):
        filt = make_relay_filter("multi:keys=16,mem=512", family=FAMILY)
        load_keys(filt, KEYS)
        decoded = decode_filter(encode_filter(filt), family=FAMILY)
        assert isinstance(decoded, TCBFCollection)
        assert len(decoded.filters) == len(filt.filters)
        assert decoded.fill_ratio_threshold == pytest.approx(filt.fill_ratio_threshold)

    def test_decoded_countbf_preserves_grid(self):
        filt = make_relay_filter("countbf:rows=8", family=FAMILY)
        load_keys(filt, KEYS)
        decoded = decode_filter(encode_filter(filt), family=FAMILY)
        assert isinstance(decoded, CountBF2D)
        assert decoded.rows == 8
        assert decoded.cols == filt.cols

    def test_encode_rejects_unknown_type(self):
        with pytest.raises(TypeError):
            encode_filter(object())
