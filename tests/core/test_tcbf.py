"""Tests for the Temporal Counting Bloom Filter (paper Sec. IV)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashing import HashFamily
from repro.core.tcbf import DEFAULT_INITIAL_VALUE, TemporalCountingBloomFilter


def tcbf(family=None, **kwargs):
    family = family or HashFamily(4, 256, seed=21)
    return TemporalCountingBloomFilter(family=family, **kwargs)


class TestInsertion:
    def test_insert_sets_counters_to_initial_value(self, family):
        f = tcbf(family, initial_value=50)
        f.insert("a")
        for p in family.distinct_positions("a"):
            assert f.counter(p) == 50

    def test_insert_does_not_change_set_counters(self, family):
        """Sec. IV-A: 'If the counter has already been set, we do not
        change its value' — insertions always yield identical counters."""
        f = tcbf(family, initial_value=50, decay_factor=1.0)
        f.insert("a")
        f.advance(10.0)  # counters now 40
        f.insert("a")  # bits still set -> unchanged
        for p in family.distinct_positions("a"):
            assert f.counter(p) == 40

    def test_insert_rearms_fully_decayed_bits(self, family):
        f = tcbf(family, initial_value=10, decay_factor=1.0)
        f.insert("a")
        f.advance(11.0)  # fully decayed
        assert "a" not in f
        f.insert("a")
        assert "a" in f
        assert f.min_counter("a") == 10

    def test_refresh_rearms_live_counters(self, family):
        f = tcbf(family, initial_value=50, decay_factor=1.0)
        f.insert("a")
        f.advance(20.0)
        f.refresh("a")
        assert f.min_counter("a") == 50

    def test_insert_into_merged_filter_raises(self, family):
        f = tcbf(family)
        other = tcbf(family)
        other.insert("x")
        f.a_merge(other)
        with pytest.raises(RuntimeError, match="merged"):
            f.insert("y")
        with pytest.raises(RuntimeError, match="merged"):
            f.refresh("x")

    def test_with_keys_is_the_documented_workaround(self, family):
        f = tcbf(family, initial_value=50)
        f.a_merge(TemporalCountingBloomFilter.of(["x"], family=family))
        f.with_keys(["y"])  # insert-into-fresh-then-merge
        assert "x" in f and "y" in f

    def test_invalid_parameters(self, family):
        with pytest.raises(ValueError, match="initial_value"):
            tcbf(family, initial_value=0)
        with pytest.raises(ValueError, match="decay_factor"):
            tcbf(family, decay_factor=-1)


class TestDecay:
    def test_decay_decrements_all_counters(self, family):
        f = tcbf(family, initial_value=50)
        f.insert_all(["a", "b"])
        f.decay(10)
        assert f.min_counter("a") == 40
        assert f.min_counter("b") == 40

    def test_decay_removes_exhausted_bits(self, family):
        f = tcbf(family, initial_value=10)
        f.insert("a")
        f.decay(10)
        assert f.is_empty()
        assert "a" not in f

    def test_decay_zero_is_noop(self, family):
        f = tcbf(family, initial_value=10)
        f.insert("a")
        f.decay(0)
        assert f.min_counter("a") == 10

    def test_decay_negative_raises(self, family):
        with pytest.raises(ValueError):
            tcbf(family).decay(-1)

    def test_advance_applies_df_times_elapsed(self, family):
        f = tcbf(family, initial_value=50, decay_factor=2.0)
        f.insert("a")
        f.advance(5.0)
        assert f.min_counter("a") == 40  # 50 - 2*5

    def test_advance_backwards_raises(self, family):
        f = tcbf(family, time=10.0)
        with pytest.raises(ValueError, match="backwards"):
            f.advance(5.0)

    def test_advance_without_df_keeps_counters(self, family):
        f = tcbf(family, initial_value=50, decay_factor=0.0)
        f.insert("a")
        f.advance(1e6)
        assert f.min_counter("a") == 50

    def test_lazy_advance_equals_eager_decay(self, family):
        """One advance(T) must equal many small decays totalling DF*T."""
        lazy = tcbf(family, initial_value=50, decay_factor=0.5)
        eager = tcbf(family, initial_value=50, decay_factor=0.5)
        for f in (lazy, eager):
            f.insert_all(["a", "b", "c"])
        lazy.advance(60.0)
        for _ in range(60):
            eager.decay(0.5)
        assert lazy.counters() == pytest.approx(eager.counters())

    def test_fig4_frequent_key_outlives_rare_key(self, family):
        """Fig. 4: the key inserted repeatedly is the only one left."""
        f = tcbf(family, initial_value=10, decay_factor=1.0)
        f.insert("k0")
        f.insert("k1")
        f.advance(5.0)
        f.refresh("k0")  # k0 re-announced at t=5
        f.advance(12.0)  # k1's counters (10-12) gone; k0 at 10-7=3
        assert "k0" in f
        assert "k1" not in f or set(family.positions("k1")) & set(
            family.positions("k0")
        )


class TestMerges:
    def test_m_merge_takes_maximum(self, family):
        a = tcbf(family, initial_value=50, decay_factor=1.0)
        b = tcbf(family, initial_value=50)
        a.insert("x")
        a.advance(20.0)  # a's counters: 30
        b.insert("x")  # b's counters: 50
        a.m_merge(b)
        assert a.min_counter("x") == 50

    def test_a_merge_sums(self, family):
        a = tcbf(family, initial_value=50)
        b = tcbf(family, initial_value=50)
        a.insert("x")
        b.insert("x")
        a.a_merge(b)
        assert a.min_counter("x") == 100

    def test_merge_unions_bits(self, family):
        a = TemporalCountingBloomFilter.of(["x"], family=family)
        b = TemporalCountingBloomFilter.of(["y"], family=family)
        merged = a.m_merged(b)
        assert "x" in merged and "y" in merged

    def test_merge_marks_filter_as_merged(self, family):
        a = tcbf(family)
        assert not a.merged
        a.a_merge(TemporalCountingBloomFilter.of(["x"], family=family))
        assert a.merged

    def test_merge_aligns_clocks(self, family):
        """Merging a fresher filter first advances (and decays) the target."""
        a = tcbf(family, initial_value=50, decay_factor=1.0)
        a.insert("x")
        b = tcbf(family, initial_value=50, time=20.0)
        b.insert("y")
        a.m_merge(b)
        assert a.time == 20.0
        assert a.min_counter("x") == 30  # decayed during the alignment
        assert a.min_counter("y") == 50

    def test_merge_decays_stale_operand(self, family):
        """An older operand's counters decay before combining."""
        a = tcbf(family, initial_value=50, decay_factor=1.0, time=30.0)
        b = tcbf(family, initial_value=50, decay_factor=1.0, time=0.0)
        b.insert("y")  # worth 50 at t=0 -> 20 at t=30
        a.m_merge(b)
        assert a.min_counter("y") == pytest.approx(20.0)

    def test_merge_drops_fully_decayed_operand_keys(self, family):
        a = tcbf(family, initial_value=10, decay_factor=1.0, time=100.0)
        b = tcbf(family, initial_value=10, decay_factor=1.0, time=0.0)
        b.insert("y")  # dead long before t=100
        a.m_merge(b)
        assert a.is_empty()

    def test_merge_rejects_incompatible_families(self):
        a = tcbf(HashFamily(4, 256, 1))
        b = tcbf(HashFamily(4, 256, 2))
        with pytest.raises(ValueError, match="hash families"):
            a.a_merge(b)

    def test_pure_merge_helpers_leave_operands(self, family):
        a = TemporalCountingBloomFilter.of(["x"], family=family)
        b = TemporalCountingBloomFilter.of(["y"], family=family)
        a_bits = a.counters()
        a.a_merged(b)
        assert a.counters() == a_bits
        assert not a.merged

    def test_decay_boundary_counter_exactly_equal_to_amount(self, family):
        """A counter exactly equal to the decay amount is reset (value
        must stay strictly positive to survive)."""
        f = tcbf(family, initial_value=10.0)
        f.insert("a")
        f.decay(10.0)
        assert f.is_empty()
        assert f.min_counter("a") == 0.0

    def test_decay_boundary_epsilon_above_amount_survives(self, family):
        f = tcbf(family, initial_value=10.5)
        f.insert("a")
        f.decay(10.0)
        assert "a" in f
        assert f.min_counter("a") == pytest.approx(0.5)

    def test_fig3_a_and_m_merge_differ(self, family):
        """Fig. 3: A- and M-merge of the same operands differ in counters
        but agree in bits."""
        k0 = TemporalCountingBloomFilter.of(["k0"], family=family, initial_value=10)
        k1 = TemporalCountingBloomFilter.of(["k1"], family=family, initial_value=10)
        am = k0.a_merged(k1)
        mm = k0.m_merged(k1)
        assert set(am) == set(mm)
        overlap = set(family.distinct_positions("k0")) & set(
            family.distinct_positions("k1")
        )
        for p in overlap:
            assert am.counter(p) == 20
            assert mm.counter(p) == 10


class TestMergeClockSkew:
    """Edge cases of `_combine`'s clock alignment (other ahead/behind
    self, zero-DF operands mixed with decaying ones)."""

    def test_other_ahead_decays_self_before_combining(self, family):
        a = tcbf(family, initial_value=50, decay_factor=2.0, time=0.0)
        a.insert("x")
        b = tcbf(family, initial_value=50, decay_factor=1.0, time=10.0)
        b.insert("y")
        a.m_merge(b)
        # Self advanced 10 time units at DF=2 before the merge; the
        # operand is at its own "now" so contributes undecayed.
        assert a.time == 10.0
        assert a.min_counter("x") == pytest.approx(30.0)
        assert a.min_counter("y") == pytest.approx(50.0)

    def test_other_behind_is_lag_decayed_at_its_own_df(self, family):
        a = tcbf(family, initial_value=50, decay_factor=5.0, time=12.0)
        b = tcbf(family, initial_value=50, decay_factor=2.0, time=4.0)
        b.insert("y")
        a.m_merge(b)
        # Operand counters lose other.DF * skew = 2 * 8 = 16 — the
        # *operand's* decay factor governs the catch-up, not self's.
        assert a.time == 12.0
        assert a.min_counter("y") == pytest.approx(34.0)

    def test_zero_df_operand_behind_contributes_undecayed(self, family):
        """A DF=0 operand never decays, however stale its clock is."""
        a = tcbf(family, initial_value=50, decay_factor=1.0, time=100.0)
        b = tcbf(family, initial_value=50, decay_factor=0.0, time=0.0)
        b.insert("y")
        a.a_merge(b)
        assert a.min_counter("y") == pytest.approx(50.0)

    def test_zero_df_self_keeps_counters_when_advanced_by_merge(self, family):
        """Aligning a DF=0 target to a fresher operand must not decay it."""
        a = tcbf(family, initial_value=50, decay_factor=0.0, time=0.0)
        a.insert("x")
        b = tcbf(family, initial_value=50, decay_factor=3.0, time=40.0)
        b.insert("y")
        a.a_merge(b)
        assert a.time == 40.0
        assert a.min_counter("x") == pytest.approx(50.0)
        assert a.min_counter("y") == pytest.approx(50.0)

    def test_operand_counter_exactly_equal_to_lag_is_dropped(self, family):
        """Boundary: a counter that decays exactly to zero during the
        skew catch-up contributes nothing (strictly-positive rule)."""
        a = tcbf(family, initial_value=50, decay_factor=1.0, time=10.0)
        b = tcbf(family, initial_value=10, decay_factor=1.0, time=0.0)
        b.insert("y")  # 10 - 1.0 * 10 == 0 exactly
        a.m_merge(b)
        assert a.is_empty()
        assert a.min_counter("y") == 0.0

    def test_skewed_a_merge_sums_on_the_common_timeline(self, family):
        a = tcbf(family, initial_value=50, decay_factor=1.0, time=0.0)
        a.insert("x")
        b = tcbf(family, initial_value=50, decay_factor=1.0, time=20.0)
        b.insert("x")
        a.a_merge(b)
        # Self decays to 30 during alignment, then sums with the
        # operand's fresh 50 on the shared t=20 timeline.
        assert a.min_counter("x") == pytest.approx(80.0)


class TestQueries:
    def test_existential_no_false_negatives(self, family):
        f = TemporalCountingBloomFilter.of(
            [f"k{i}" for i in range(38)], family=family
        )
        for i in range(38):
            assert f"k{i}" in f

    def test_min_counter_zero_when_absent(self, family):
        f = tcbf(family)
        assert f.min_counter("nothing") == 0.0

    def test_preference_difference_when_both_know(self, family):
        a = tcbf(family, initial_value=50)
        b = tcbf(family, initial_value=30)
        a.insert("x")
        b.insert("x")
        assert a.preference("x", b) == 20.0
        assert b.preference("x", a) == -20.0

    def test_preference_is_a_when_other_empty(self, family):
        """Sec. IV-A: 'the preference is a when b equals 0'."""
        a = tcbf(family, initial_value=50)
        a.insert("x")
        b = tcbf(family)
        assert a.preference("x", b) == 50.0

    def test_preference_zero_minus_b_when_self_empty(self, family):
        a = tcbf(family)
        b = tcbf(family, initial_value=30)
        b.insert("x")
        assert a.preference("x", b) == -30.0

    def test_query_all(self, family):
        f = TemporalCountingBloomFilter.of(["a", "b"], family=family)
        assert set(f.query_all(["a", "b"])) >= {"a", "b"}

    def test_to_bloom_strips_counters(self, family):
        f = TemporalCountingBloomFilter.of(["a"], family=family)
        bloom = f.to_bloom()
        assert set(bloom.set_bits) == set(f)

    def test_fpr_decreases_after_decay(self, family):
        """The TCBF's FPR 'tends to decrease with the time because
        elements get removed' (Sec. IV-A)."""
        f = tcbf(family, initial_value=10, decay_factor=1.0)
        f.insert_all([f"k{i}" for i in range(38)])
        probes = [f"probe-{i}" for i in range(5000)]
        before = sum(1 for p in probes if p in f)
        f.advance(11.0)
        after = sum(1 for p in probes if p in f)
        assert after < before
        assert after == 0  # everything decayed away


class TestMisc:
    def test_copy_preserves_everything(self, family):
        f = tcbf(family, initial_value=50, decay_factor=0.5, time=3.0)
        f.insert("a")
        clone = f.copy()
        assert clone == f
        assert clone.time == 3.0
        assert clone.decay_factor == 0.5
        clone.decay(10)
        assert clone != f

    def test_items_sorted(self, family):
        f = TemporalCountingBloomFilter.of(["a", "b"], family=family)
        items = f.items()
        assert items == sorted(items)

    def test_default_initial_value_is_papers_50(self):
        assert DEFAULT_INITIAL_VALUE == 50.0

    def test_repr(self, family):
        assert "DF=0.5" in repr(tcbf(family, decay_factor=0.5))


# -- property-based invariants ------------------------------------------------

_keys = st.sets(st.text(min_size=1, max_size=8), min_size=1, max_size=12)


@given(keys=_keys, decay=st.floats(0.0, 5.0), elapsed=st.floats(0.0, 100.0))
@settings(max_examples=60)
def test_property_counters_never_negative(keys, decay, elapsed):
    fam = HashFamily(3, 128, seed=11)
    f = TemporalCountingBloomFilter.of(
        keys, family=fam, initial_value=20, decay_factor=decay
    )
    f.advance(elapsed)
    assert all(v > 0 for _, v in f.items())


@given(keys_a=_keys, keys_b=_keys)
@settings(max_examples=50)
def test_property_m_merge_counters_bounded_by_operand_max(keys_a, keys_b):
    fam = HashFamily(3, 128, seed=12)
    a = TemporalCountingBloomFilter.of(keys_a, family=fam, initial_value=30)
    b = TemporalCountingBloomFilter.of(keys_b, family=fam, initial_value=30)
    merged = a.m_merged(b)
    for position, value in merged.items():
        assert value <= max(a.counter(position), b.counter(position))
        assert value == max(a.counter(position), b.counter(position))


@given(keys_a=_keys, keys_b=_keys)
@settings(max_examples=50)
def test_property_a_merge_counters_are_sums(keys_a, keys_b):
    fam = HashFamily(3, 128, seed=13)
    a = TemporalCountingBloomFilter.of(keys_a, family=fam, initial_value=30)
    b = TemporalCountingBloomFilter.of(keys_b, family=fam, initial_value=30)
    merged = a.a_merged(b)
    for position, value in merged.items():
        assert value == a.counter(position) + b.counter(position)


@given(keys=_keys)
@settings(max_examples=50)
def test_property_merge_membership_superset(keys):
    fam = HashFamily(3, 128, seed=14)
    a = TemporalCountingBloomFilter.of(keys, family=fam)
    empty = TemporalCountingBloomFilter(family=fam)
    merged = empty.m_merged(a)
    assert all(k in merged for k in keys)


@given(
    keys=_keys,
    splits=st.lists(st.floats(0.01, 10.0), min_size=1, max_size=6),
)
@settings(max_examples=50)
def test_property_decay_is_additive(keys, splits):
    """decay(x); decay(y) == decay(x + y)."""
    fam = HashFamily(3, 128, seed=15)
    stepped = TemporalCountingBloomFilter.of(keys, family=fam, initial_value=100)
    oneshot = TemporalCountingBloomFilter.of(keys, family=fam, initial_value=100)
    for amount in splits:
        stepped.decay(amount)
    oneshot.decay(sum(splits))
    assert stepped.counters() == pytest.approx(oneshot.counters())
