"""Smoke tests: every shipped example must run to completion.

Examples are documentation that executes; these tests keep them from
rotting.  Each runs in a subprocess exactly as a user would invoke it
(with a reduced scale argument where the script accepts one).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def run_example(name, args=(), timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamplesRun:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Temporal Counting Bloom Filter" in out
        assert "B-SUB" in out and "PUSH" in out and "PULL" in out
        assert "temporal deletion" not in out.lower() or True

    def test_twitter_dissemination(self):
        out = run_example("twitter_dissemination.py", args=["0.02"])
        assert "NewMoon" in out
        assert "Delivery ratio" in out
        assert "brokers" in out

    def test_conference_social_analysis(self):
        out = run_example("conference_social_analysis.py")
        assert "degree centrality" in out
        assert "communities" in out
        assert "election result" in out

    def test_df_tuning(self):
        out = run_example("df_tuning.py")
        assert "Eq. 5" in out
        assert "optimal TCBF allocation" in out
        assert "delivery ratio" in out

    def test_campus_mobility(self):
        out = run_example("campus_mobility.py")
        assert "campus" in out
        assert "mJ/delivery" in out
        assert "hotspot" in out


class TestExamplesInventory:
    def test_at_least_five_examples_exist(self):
        scripts = sorted(EXAMPLES_DIR.glob("*.py"))
        assert len(scripts) >= 5
        assert (EXAMPLES_DIR / "quickstart.py") in scripts

    def test_every_example_has_a_docstring_and_main_guard(self):
        for script in EXAMPLES_DIR.glob("*.py"):
            source = script.read_text()
            assert source.lstrip().startswith(("#!", '"""')), script.name
            assert '__name__ == "__main__"' in source, script.name
