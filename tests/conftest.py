"""Shared fixtures for the B-SUB test suite."""

import pytest

from repro.core.hashing import HashFamily
from repro.traces.model import Contact, ContactTrace


@pytest.fixture
def family():
    """The paper's filter geometry: 256 bits, 4 hashes."""
    return HashFamily(num_hashes=4, num_bits=256, seed=99)


@pytest.fixture
def small_family():
    """A tiny filter where collisions are easy to trigger."""
    return HashFamily(num_hashes=2, num_bits=16, seed=7)


def make_trace(contact_tuples, nodes=None, name="test"):
    """Build a trace from (start, duration, a, b) tuples."""
    contacts = [Contact.make(s, d, a, b) for s, d, a, b in contact_tuples]
    return ContactTrace(contacts, nodes=nodes, name=name)


@pytest.fixture
def line_trace():
    """0 meets 1, then 1 meets 2, then 2 meets 3 — a relay chain."""
    return make_trace(
        [
            (100.0, 60.0, 0, 1),
            (300.0, 60.0, 1, 2),
            (500.0, 60.0, 2, 3),
        ],
        nodes=range(4),
    )
