"""The passive fast path must be indistinguishable from the full loop.

``Simulation.run`` takes an array-level shortcut for passive protocols
(no handlers, no workload, no recorder, no faults).  These tests pin
that the shortcut produces the exact report the general event loop
would, and that every condition that disqualifies the shortcut really
routes through the general loop.
"""

import pytest

from repro.dtn import MessageEvent, PassiveProtocol, Simulation
from repro.dtn.simulator import SimulationReport
from repro.obs import Observability
from repro.traces import ContactTrace, haggle_like
from repro.traces.backends import TRACE_BACKENDS
from repro.traces.model import Contact


class _PassiveViaGeneralLoop(PassiveProtocol):
    """Handler-free protocol that is *not* flagged passive.

    Runs through the general per-contact loop, giving the ground-truth
    report the fast path must reproduce.
    """

    name = "PASSIVE-GENERAL"
    passive = False


def _reports_equal(first: SimulationReport, second: SimulationReport):
    assert first.num_contacts == second.num_contacts
    assert first.num_messages_created == second.num_messages_created
    assert first.end_time == second.end_time
    assert first.bytes_transferred == second.bytes_transferred
    assert first.refused_transfers == second.refused_transfers
    assert first.channels_exhausted == second.channels_exhausted
    assert dict(first.contacts_by_node) == dict(second.contacts_by_node)
    assert dict(first.tx_bytes_by_node) == dict(second.tx_bytes_by_node)
    assert dict(first.rx_bytes_by_node) == dict(second.rx_bytes_by_node)


@pytest.fixture(scope="module")
def trace():
    return haggle_like(scale=0.01, seed=11)


@pytest.mark.parametrize("backend", TRACE_BACKENDS)
@pytest.mark.parametrize("rate_bps", [None, 64.0, 2.1e6 / 8])
def test_fast_path_matches_general_loop(trace, backend, rate_bps):
    replica = ContactTrace(list(trace), name=trace.name, backend=backend)
    fast = Simulation(replica, PassiveProtocol(), rate_bps=rate_bps).run()
    slow = Simulation(
        replica, _PassiveViaGeneralLoop(), rate_bps=rate_bps
    ).run()
    _reports_equal(fast, slow)


@pytest.mark.parametrize("backend", TRACE_BACKENDS)
def test_empty_trace(backend):
    empty = ContactTrace([], nodes=range(4), backend=backend)
    fast = Simulation(empty, PassiveProtocol()).run()
    slow = Simulation(empty, _PassiveViaGeneralLoop()).run()
    _reports_equal(fast, slow)
    assert fast.num_contacts == 0
    assert fast.end_time == 0.0


def test_negative_node_ids_counted_correctly():
    # The fast path's bincount shortcut needs dense non-negative ids;
    # negative ids must fall back to exact per-node counting.
    contacts = [
        Contact.make(0.0, 10.0, -3, 1),
        Contact.make(5.0, 10.0, -3, 2),
        Contact.make(7.0, 10.0, 1, 2),
    ]
    replica = ContactTrace(contacts)
    fast = Simulation(replica, PassiveProtocol()).run()
    slow = Simulation(replica, _PassiveViaGeneralLoop()).run()
    _reports_equal(fast, slow)
    assert dict(fast.contacts_by_node) == {-3: 2, 1: 2, 2: 2}


def test_recorder_disables_fast_path(trace):
    obs = Observability.enabled()
    recorded = Simulation(
        trace, PassiveProtocol(), recorder=obs.tracer
    ).run()
    plain = Simulation(trace, PassiveProtocol()).run()
    _reports_equal(recorded, plain)
    # The general loop emits one contact event per contact — proof the
    # run did not take the recorder-blind shortcut.
    assert len(obs.tracer.events_of("contact")) == trace.num_contacts


def test_workload_disables_fast_path(trace):
    events = [MessageEvent(time=0.0, node=0, message=object())]
    report = Simulation(trace, PassiveProtocol(), message_events=events).run()
    assert report.num_messages_created == 1
