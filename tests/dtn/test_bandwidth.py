"""Tests for contact bandwidth budgeting."""

import pytest

from repro.dtn.bandwidth import (
    BLUETOOTH_EFFECTIVE_BPS,
    BLUETOOTH_PEAK_BPS,
    ContactChannel,
)


class TestBudget:
    def test_budget_is_duration_times_rate(self):
        ch = ContactChannel(duration_s=8.0, rate_bps=1000)
        assert ch.budget_bytes == 1000.0  # 8 s * 1000 bps / 8

    def test_paper_constants(self):
        assert BLUETOOTH_PEAK_BPS == 1_000_000
        assert BLUETOOTH_EFFECTIVE_BPS == 250_000

    def test_send_charges(self):
        ch = ContactChannel(8.0, 1000)
        assert ch.send(400)
        assert ch.spent_bytes == 400
        assert ch.remaining_bytes == 600

    def test_send_refuses_over_budget_without_charging(self):
        ch = ContactChannel(8.0, 1000)
        assert not ch.send(1001)
        assert ch.spent_bytes == 0
        assert ch.refused_transfers == 1

    def test_exact_fit_allowed(self):
        ch = ContactChannel(8.0, 1000)
        assert ch.send(1000)
        assert ch.remaining_bytes == 0

    def test_exhausted(self):
        ch = ContactChannel(8.0, 1000)
        ch.send(1000)
        assert ch.exhausted()

    def test_infinite_bandwidth(self):
        ch = ContactChannel(1.0, rate_bps=None)
        assert ch.send(10**12)
        assert not ch.exhausted()

    def test_can_send_does_not_charge(self):
        ch = ContactChannel(8.0, 1000)
        assert ch.can_send(500)
        assert ch.spent_bytes == 0

    def test_negative_send_rejected(self):
        with pytest.raises(ValueError):
            ContactChannel(8.0, 1000).send(-1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ContactChannel(-1.0, 1000)
        with pytest.raises(ValueError):
            ContactChannel(1.0, 0)

    def test_typical_contact_carries_many_messages(self):
        """A 230 s contact at 250 Kbps fits tens of thousands of
        140-byte messages — the paper's 'wasted bandwidth is
        acceptable' argument."""
        ch = ContactChannel(230.0, BLUETOOTH_EFFECTIVE_BPS)
        assert ch.budget_bytes / 140 > 10_000
