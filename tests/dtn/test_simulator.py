"""Tests for the trace-driven simulation engine."""

import pytest

from repro.dtn.events import MessageEvent
from repro.dtn.simulator import Protocol, Simulation
from repro.traces.model import Contact, ContactTrace

from ..conftest import make_trace


class RecordingProtocol(Protocol):
    """Captures the event sequence the engine delivers."""

    name = "recorder"

    def __init__(self):
        self.events = []
        self.setup_called_with = None
        self.finish_time = None

    def setup(self, trace):
        self.setup_called_with = trace

    def on_message_created(self, node, message, now):
        self.events.append(("msg", now, node, message))

    def on_contact(self, contact, channel, now):
        self.events.append(("contact", now, contact.pair, channel))

    def finish(self, now):
        self.finish_time = now


class TestEventOrdering:
    def test_contacts_delivered_in_time_order(self, line_trace):
        protocol = RecordingProtocol()
        Simulation(line_trace, protocol).run()
        times = [e[1] for e in protocol.events]
        assert times == sorted(times)
        assert [e[2] for e in protocol.events] == [(0, 1), (1, 2), (2, 3)]

    def test_messages_interleaved_with_contacts(self, line_trace):
        events = [
            MessageEvent(time=50.0, node=0, message="m1"),
            MessageEvent(time=400.0, node=2, message="m2"),
        ]
        protocol = RecordingProtocol()
        Simulation(line_trace, protocol, events).run()
        kinds = [(e[0], e[1]) for e in protocol.events]
        assert kinds == [
            ("msg", 50.0),
            ("contact", 100.0),
            ("contact", 300.0),
            ("msg", 400.0),
            ("contact", 500.0),
        ]

    def test_message_at_same_time_as_contact_comes_first(self):
        trace = make_trace([(100.0, 10.0, 0, 1)])
        events = [MessageEvent(time=100.0, node=0, message="m")]
        protocol = RecordingProtocol()
        Simulation(trace, protocol, events).run()
        assert [e[0] for e in protocol.events] == ["msg", "contact"]

    def test_unsorted_message_events_are_sorted(self, line_trace):
        events = [
            MessageEvent(time=400.0, node=0, message="late"),
            MessageEvent(time=50.0, node=0, message="early"),
        ]
        protocol = RecordingProtocol()
        Simulation(line_trace, protocol, events).run()
        messages = [e[3] for e in protocol.events if e[0] == "msg"]
        assert messages == ["early", "late"]


class TestLifecycle:
    def test_setup_receives_trace(self, line_trace):
        protocol = RecordingProtocol()
        Simulation(line_trace, protocol).run()
        assert protocol.setup_called_with is line_trace

    def test_finish_receives_end_time(self, line_trace):
        protocol = RecordingProtocol()
        Simulation(line_trace, protocol).run()
        assert protocol.finish_time == line_trace.end_time

    def test_single_shot(self, line_trace):
        sim = Simulation(line_trace, RecordingProtocol())
        sim.run()
        with pytest.raises(RuntimeError, match="single-shot"):
            sim.run()

    def test_empty_trace_and_events(self):
        trace = ContactTrace([], nodes=range(3))
        protocol = RecordingProtocol()
        report = Simulation(trace, protocol).run()
        assert report.num_contacts == 0
        assert protocol.finish_time == 0.0


class TestReport:
    def test_counts(self, line_trace):
        events = [MessageEvent(time=1.0, node=0, message="m")]
        report = Simulation(line_trace, RecordingProtocol(), events).run()
        assert report.num_contacts == 3
        assert report.num_messages_created == 1
        assert report.end_time == line_trace.end_time

    def test_bytes_and_refusals_accounted(self, line_trace):
        class Greedy(Protocol):
            name = "greedy"

            def on_message_created(self, node, message, now):
                pass

            def on_contact(self, contact, channel, now):
                channel.send(100)
                channel.send(10**12)  # refused

        report = Simulation(line_trace, Greedy()).run()
        assert report.bytes_transferred == 300
        assert report.refused_transfers == 3

    def test_channel_rate_respected(self):
        """A 1-second contact at 8 bps carries exactly 1 byte."""
        trace = make_trace([(0.0, 1.0, 0, 1)])

        class OneByte(Protocol):
            name = "onebyte"
            sent = None

            def on_message_created(self, node, message, now):
                pass

            def on_contact(self, contact, channel, now):
                OneByte.sent = (channel.send(1), channel.send(1))

        Simulation(trace, OneByte(), rate_bps=8).run()
        assert OneByte.sent == (True, False)


class TestMessageEvent:
    def test_orders_by_time(self):
        a = MessageEvent(1.0, 5, "x")
        b = MessageEvent(2.0, 1, "y")
        assert a < b

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            MessageEvent(-1.0, 0, "x")
