"""Sharded replay is bit-identical to serial, for every protocol.

Sharding only changes *how* the contact timeline is walked (chunk
edges, partial merges, worker fan-out) — never what any node observes.
These tests pin that: the passive partial/merge algebra reproduces the
single-pass reduction on arbitrary partitions, and full simulations
(passive, B-SUB, PUSH, PULL, with and without faults) report the exact
same results under any shard count, including the paper-workload specs
behind the Fig. 7 / Fig. 9 golden digests.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ExperimentSpec, run
from repro.dtn import PassiveProtocol, Simulation
from repro.dtn.simulator import (
    merge_passive_partials,
    passive_partial,
    replay_chunks,
    split_rows,
)
from repro.faults import FaultSpec
from repro.traces import haggle_like

#: The Fig. 7 sweep's base spec at the golden-digest settings and the
#: Fig. 9 DF-sweep shape (explicit DF, 20 h TTL).
FIG7_SPEC = ExperimentSpec(
    protocol="B-SUB", ttl_min=120.0, num_bits=32, num_hashes=2
)
FIG9_SPEC = ExperimentSpec(
    protocol="B-SUB", ttl_min=1200.0, df_per_min=0.138,
    num_bits=32, num_hashes=2,
)


@pytest.fixture(scope="module")
def trace():
    return haggle_like(scale=0.01, seed=3)


def _engine_key(report):
    return (
        report.num_contacts,
        report.end_time,
        report.bytes_transferred,
        report.refused_transfers,
        report.channels_exhausted,
        dict(report.contacts_by_node),
        dict(report.tx_bytes_by_node),
        dict(report.rx_bytes_by_node),
    )


def _summary_key(summary):
    values = []
    for name, value in sorted(vars(summary).items()):
        if isinstance(value, float) and math.isnan(value):
            value = "nan"
        values.append((name, value))
    return tuple(values)


class TestSplitRows:
    @given(n=st.integers(0, 10_000), shards=st.integers(1, 64))
    @settings(max_examples=200, deadline=None)
    def test_partition_properties(self, n, shards):
        bounds = split_rows(n, shards)
        assert len(bounds) == shards
        assert bounds[0][0] == 0
        assert bounds[-1][1] == n
        for (lo, hi), (nlo, _) in zip(bounds, bounds[1:]):
            assert lo <= hi == nlo
        sizes = [hi - lo for lo, hi in bounds]
        assert max(sizes) - min(sizes) <= 1

    def test_nonpositive_shards_clamped_to_one(self):
        assert split_rows(10, 0) == [(0, 10)]
        assert split_rows(10, -3) == [(0, 10)]

    @given(n=st.integers(0, 100_000), shards=st.one_of(
        st.none(), st.integers(1, 8)
    ))
    @settings(max_examples=100, deadline=None)
    def test_replay_chunks_cover_everything(self, n, shards):
        chunks = replay_chunks(n, shards)
        if shards:
            shard_edges = {lo for lo, _ in split_rows(n, shards)}
            assert shard_edges <= ({lo for lo, _ in chunks} | {n})
        position = 0
        for lo, hi in chunks:
            assert lo == position
            assert hi > lo
            position = hi
        assert position == n or (n == 0 and not chunks)


class TestPartialMerge:
    @given(
        cuts=st.lists(st.integers(0, 10_000), max_size=6),
        rate=st.one_of(st.none(), st.floats(1.0, 1e6)),
    )
    @settings(max_examples=30, deadline=None)
    def test_any_partition_merges_to_the_single_pass(
        self, trace, cuts, rate
    ):
        store = trace.store
        n = len(store)
        whole = merge_passive_partials([passive_partial(store, rate)])
        edges = sorted({0, n, *[min(c, n) for c in cuts]})
        parts = [
            passive_partial(store.row_slice(lo, hi), rate)
            for lo, hi in zip(edges, edges[1:])
        ]
        merged = merge_passive_partials(parts)
        assert merged == whole


class TestShardedSimulationIdentity:
    @pytest.mark.parametrize("shards", [2, 4, 7])
    def test_passive(self, trace, shards):
        serial = Simulation(trace, PassiveProtocol()).run()
        sharded = Simulation(trace, PassiveProtocol(), shards=shards).run()
        assert _engine_key(serial) == _engine_key(sharded)

    @pytest.mark.parametrize("spec", [FIG7_SPEC, FIG9_SPEC], ids=["fig7", "fig9"])
    @pytest.mark.parametrize("shards", [3, 5])
    def test_golden_workloads(self, trace, spec, shards):
        serial = run(trace, spec)
        sharded = run(trace, spec.with_shards(shards))
        assert _engine_key(serial.engine) == _engine_key(sharded.engine)
        assert _summary_key(serial.summary) == _summary_key(sharded.summary)
        assert serial.broker_fraction == sharded.broker_fraction
        assert serial.decay_factor_per_min == sharded.decay_factor_per_min

    @pytest.mark.parametrize("protocol", ["PUSH", "PULL"])
    def test_baseline_protocols(self, trace, protocol):
        spec = FIG7_SPEC.with_protocol(protocol)
        serial = run(trace, spec)
        sharded = run(trace, spec.with_shards(4))
        assert _engine_key(serial.engine) == _engine_key(sharded.engine)
        assert _summary_key(serial.summary) == _summary_key(sharded.summary)

    def test_with_faults(self, trace):
        spec = FIG7_SPEC.with_faults(
            FaultSpec(frame_loss=0.2, crash_rate_per_day=2.0,
                      mean_downtime_s=3600.0, seed=5)
        )
        serial = run(trace, spec)
        sharded = run(trace, spec.with_shards(4))
        assert _engine_key(serial.engine) == _engine_key(sharded.engine)
        assert _summary_key(serial.summary) == _summary_key(sharded.summary)
        assert serial.fault_accounting == sharded.fault_accounting

    def test_shard_count_larger_than_trace(self, trace):
        tiny = trace.first_days(0.05)
        serial = Simulation(tiny, PassiveProtocol()).run()
        sharded = Simulation(
            tiny, PassiveProtocol(), shards=max(4, tiny.num_contacts + 3)
        ).run()
        assert _engine_key(serial) == _engine_key(sharded)

    def test_invalid_shards_rejected(self, trace):
        with pytest.raises(ValueError):
            Simulation(trace, PassiveProtocol(), shards=0)
