"""Tests for the radio energy model."""

import math

import pytest

from repro.dtn.energy import BLUETOOTH_CLASS2_MODEL, EnergyModel, EnergyReport
from repro.dtn.simulator import SimulationReport


def report(tx=None, rx=None, contacts=None):
    r = SimulationReport()
    r.tx_bytes_by_node = tx or {}
    r.rx_bytes_by_node = rx or {}
    r.contacts_by_node = contacts or {}
    return r


class TestEnergyModel:
    def test_tx_rx_and_setup_split(self):
        model = EnergyModel(
            tx_j_per_byte=2.0, rx_j_per_byte=1.0, contact_setup_j=10.0
        )
        result = model.evaluate(
            report(tx={0: 5.0}, rx={0: 3.0, 1: 4.0}, contacts={0: 2, 1: 2})
        )
        assert result.per_node_data_j[0] == pytest.approx(5 * 2 + 3 * 1)
        assert result.per_node_data_j[1] == pytest.approx(4 * 1)
        assert result.per_node_setup_j == {0: 20.0, 1: 20.0}
        assert result.per_node_j[0] == pytest.approx(13 + 20)
        assert result.total_j == pytest.approx(17 + 40)

    def test_negative_coefficients_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(tx_j_per_byte=-1.0)

    def test_default_model_magnitudes(self):
        """One 140-byte message costs microjoules; a contact setup
        costs tens of millijoules — discovery dominates for small data."""
        per_message = 140 * BLUETOOTH_CLASS2_MODEL.tx_j_per_byte
        assert per_message < BLUETOOTH_CLASS2_MODEL.contact_setup_j


class TestEnergyReport:
    def test_totals(self):
        r = EnergyReport(
            per_node_data_j={0: 1.0, 1: 3.0}, per_node_setup_j={0: 2.0, 1: 2.0}
        )
        assert r.data_j == 4.0
        assert r.setup_j == 4.0
        assert r.total_j == 8.0
        assert r.max_node_j == 5.0
        assert r.mean_node_j() == 4.0

    def test_hotspot_ratio_data_share(self):
        r = EnergyReport(
            per_node_data_j={0: 1.0, 1: 3.0}, per_node_setup_j={0: 5.0, 1: 5.0}
        )
        assert r.hotspot_ratio() == 1.5  # data only
        assert r.hotspot_ratio(data_only=False) == pytest.approx(8.0 / 7.0)

    def test_energy_per_delivery(self):
        r = EnergyReport(per_node_data_j={0: 10.0}, per_node_setup_j={0: 90.0})
        assert r.energy_per_delivery_j(5) == 2.0
        assert r.energy_per_delivery_j(5, data_only=False) == 20.0
        assert math.isnan(r.energy_per_delivery_j(0))

    def test_empty(self):
        r = EnergyReport(per_node_data_j={}, per_node_setup_j={})
        assert r.total_j == 0.0
        assert r.max_node_j == 0.0
        assert math.isnan(r.hotspot_ratio())


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def runs(self):
        from repro.experiments import ExperimentConfig, run_experiment
        from repro.traces.synthetic import haggle_like

        trace = haggle_like(scale=0.03, seed=16)
        config = ExperimentConfig(ttl_min=600.0, min_rate_per_s=1 / 3600.0)
        return {
            name: run_experiment(trace, name, config)
            for name in ("PUSH", "B-SUB", "PULL")
        }

    def test_per_node_bytes_recorded(self, runs):
        for result in runs.values():
            assert result.engine.tx_bytes_by_node
            assert result.engine.rx_bytes_by_node
            total_tx = sum(result.engine.tx_bytes_by_node.values())
            assert total_tx == pytest.approx(result.engine.bytes_transferred)

    def test_setup_energy_identical_across_protocols(self, runs):
        setups = {
            name: BLUETOOTH_CLASS2_MODEL.evaluate(r.engine).setup_j
            for name, r in runs.items()
        }
        assert len(set(setups.values())) == 1  # same trace, same discovery cost

    def test_push_spends_most_data_energy(self, runs):
        energies = {
            name: BLUETOOTH_CLASS2_MODEL.evaluate(r.engine).data_j
            for name, r in runs.items()
        }
        assert energies["PUSH"] > energies["B-SUB"] > energies["PULL"]

    def test_bsub_data_energy_per_delivery_beats_push(self, runs):
        """The paper's bottom line: similar delivery at much less
        resource consumption."""

        def joules_per_delivery(result):
            energy = BLUETOOTH_CLASS2_MODEL.evaluate(result.engine)
            return energy.energy_per_delivery_j(
                result.summary.num_intended_deliveries
            )

        assert joules_per_delivery(runs["B-SUB"]) < joules_per_delivery(
            runs["PUSH"]
        )

    def test_bsub_concentrates_load_on_brokers(self, runs):
        """B-SUB's hotspot ratio reflects the deliberate broker burden."""
        bsub = BLUETOOTH_CLASS2_MODEL.evaluate(runs["B-SUB"].engine)
        assert bsub.hotspot_ratio() > 1.0
