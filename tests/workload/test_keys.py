"""Tests for the Table II key workload."""

import numpy as np
import pytest

from repro.workload.keys import TABLE_II_TOP4, KeyDistribution, twitter_trends_2009


class TestTwitterTrends2009:
    def test_exactly_38_keys(self):
        assert len(twitter_trends_2009()) == 38

    def test_table_ii_top4_weights_exact(self):
        dist = twitter_trends_2009()
        assert dist.top(4) == list(TABLE_II_TOP4)

    def test_published_values(self):
        published = dict(TABLE_II_TOP4)
        assert published["NewMoon"] == 0.132
        assert published["Twitter'sNew"] == 0.103
        assert published["funnybutnotcool"] == 0.0887
        assert published["openwebawards"] == 0.0739

    def test_weights_sum_to_one(self):
        assert sum(twitter_trends_2009().weights) == pytest.approx(1.0)

    def test_weights_monotone_nonincreasing(self):
        weights = twitter_trends_2009().weights
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_average_key_length_near_11_5_bytes(self):
        """Sec. VII-A: 'The average length of the keys is 11.5 bytes.'"""
        assert twitter_trends_2009().average_key_length() == pytest.approx(
            11.5, abs=0.5
        )

    def test_unique_keys(self):
        dist = twitter_trends_2009()
        assert len(set(dist.keys)) == 38

    def test_deterministic(self):
        assert twitter_trends_2009().keys == twitter_trends_2009().keys


class TestKeyDistribution:
    def test_weight_of(self):
        dist = twitter_trends_2009()
        assert dist.weight_of("NewMoon") == 0.132
        with pytest.raises(KeyError):
            dist.weight_of("nope")

    def test_sampling_respects_weights(self):
        dist = twitter_trends_2009()
        rng = np.random.default_rng(0)
        draws = dist.sample_many(rng, 40_000)
        frequency = draws.count("NewMoon") / len(draws)
        assert frequency == pytest.approx(0.132, abs=0.01)

    def test_sample_single(self):
        dist = twitter_trends_2009()
        rng = np.random.default_rng(0)
        assert dist.sample(rng) in dist.keys

    def test_uniform_constructor(self):
        dist = KeyDistribution.uniform(["a", "b"])
        assert dist.weights == (0.5, 0.5)

    def test_from_weights_normalises(self):
        dist = KeyDistribution.from_weights({"a": 2.0, "b": 6.0})
        assert dist.weight_of("b") == pytest.approx(0.75)

    def test_as_dict(self):
        dist = KeyDistribution.uniform(["x", "y"])
        assert dist.as_dict() == {"x": 0.5, "y": 0.5}

    def test_validation(self):
        with pytest.raises(ValueError, match="sum to 1"):
            KeyDistribution(("a", "b"), (0.9, 0.3))
        with pytest.raises(ValueError, match="unique"):
            KeyDistribution(("a", "a"), (0.5, 0.5))
        with pytest.raises(ValueError, match="positive"):
            KeyDistribution(("a", "b"), (1.0, 0.0))
        with pytest.raises(ValueError):
            KeyDistribution(("a",), (0.5, 0.5))
        with pytest.raises(ValueError):
            KeyDistribution.uniform([])
        with pytest.raises(ValueError):
            KeyDistribution.from_weights({})

    def test_top_orders_descending(self):
        dist = twitter_trends_2009()
        top = dist.top(10)
        weights = [w for _, w in top]
        assert weights == sorted(weights, reverse=True)
