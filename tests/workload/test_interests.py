"""Tests for interest assignment."""

import pytest

from repro.workload.interests import assign_interests, consumers_of
from repro.workload.keys import KeyDistribution, twitter_trends_2009


class TestAssignInterests:
    def test_one_interest_per_node_by_default(self):
        interests = assign_interests(range(50), twitter_trends_2009(), seed=0)
        assert len(interests) == 50
        assert all(len(keys) == 1 for keys in interests.values())

    def test_interests_drawn_from_distribution(self):
        dist = twitter_trends_2009()
        interests = assign_interests(range(100), dist, seed=1)
        for keys in interests.values():
            assert keys <= set(dist.keys)

    def test_deterministic_per_seed(self):
        dist = twitter_trends_2009()
        assert assign_interests(range(30), dist, seed=5) == assign_interests(
            range(30), dist, seed=5
        )

    def test_different_seeds_differ(self):
        dist = twitter_trends_2009()
        a = assign_interests(range(30), dist, seed=1)
        b = assign_interests(range(30), dist, seed=2)
        assert a != b

    def test_weight_skew_visible_in_assignment(self):
        """Heavier keys should be picked as interests more often."""
        dist = twitter_trends_2009()
        interests = assign_interests(range(5000), dist, seed=3)
        top_key = dist.top(1)[0][0]
        count = sum(1 for keys in interests.values() if top_key in keys)
        assert count / 5000 == pytest.approx(0.132, abs=0.02)

    def test_multiple_interests_distinct(self):
        dist = twitter_trends_2009()
        interests = assign_interests(
            range(50), dist, seed=4, interests_per_node=3
        )
        assert all(len(keys) == 3 for keys in interests.values())

    def test_too_many_interests_rejected(self):
        dist = KeyDistribution.uniform(["a", "b"])
        with pytest.raises(ValueError, match="distinct"):
            assign_interests(range(5), dist, interests_per_node=3)

    def test_zero_interests_rejected(self):
        with pytest.raises(ValueError):
            assign_interests(range(5), twitter_trends_2009(), interests_per_node=0)


class TestConsumersOf:
    def test_finds_interested_nodes(self):
        interests = {0: frozenset({"a"}), 1: frozenset({"b"}), 2: frozenset({"a"})}
        assert consumers_of(interests, "a") == frozenset({0, 2})
        assert consumers_of(interests, "c") == frozenset()
