"""Tests for centrality-scaled message generation."""

import pytest

from repro.workload.generator import (
    MIN_RATE_PER_SECOND,
    WorkloadConfig,
    generate_message_events,
    message_rates,
)
from repro.workload.keys import twitter_trends_2009

from ..conftest import make_trace


def star_trace(leaves=6, meetings=4):
    """Node 0 is the hub; each leaf meets only node 0."""
    contacts = []
    t = 0.0
    for repeat in range(meetings):
        for leaf in range(1, leaves + 1):
            contacts.append((t, 30.0, 0, leaf))
            t += 500.0
    return make_trace(contacts, nodes=range(leaves + 1))


class TestMessageRates:
    def test_minimum_rate_for_least_central(self):
        trace = star_trace()
        rates = message_rates(trace, WorkloadConfig(ttl_s=3600))
        leaf_rate = rates[1]
        assert leaf_rate == pytest.approx(MIN_RATE_PER_SECOND)

    def test_rate_proportional_to_centrality(self):
        """Sec. VII-A: ℝ_v = ℝ̂ · ℂ_v / ℂ̂."""
        trace = star_trace(leaves=6)
        rates = message_rates(trace, WorkloadConfig(ttl_s=3600))
        assert rates[0] == pytest.approx(6 * rates[1])

    def test_zero_centrality_zero_rate(self):
        trace = make_trace([(0.0, 1.0, 0, 1)], nodes=range(3))
        rates = message_rates(trace, WorkloadConfig(ttl_s=3600))
        assert rates[2] == 0.0

    def test_custom_centrality_map(self):
        trace = star_trace()
        rates = message_rates(
            trace, WorkloadConfig(ttl_s=3600), centrality={n: 1.0 for n in trace.nodes}
        )
        assert len(set(rates.values())) == 1

    def test_papers_min_rate_constant(self):
        assert MIN_RATE_PER_SECOND == pytest.approx(1 / 1800)


class TestGenerateMessageEvents:
    def test_deterministic(self):
        trace = star_trace()
        config = WorkloadConfig(ttl_s=3600, seed=9)
        dist = twitter_trends_2009()
        a = generate_message_events(trace, dist, config)
        b = generate_message_events(trace, dist, config)
        assert [(e.time, e.node) for e in a] == [(e.time, e.node) for e in b]
        assert [sorted(e.message.keys) for e in a] == [
            sorted(e.message.keys) for e in b
        ]

    def test_events_sorted_by_time(self):
        events = generate_message_events(
            star_trace(), twitter_trends_2009(), WorkloadConfig(ttl_s=3600)
        )
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_messages_carry_config_ttl(self):
        events = generate_message_events(
            star_trace(), twitter_trends_2009(), WorkloadConfig(ttl_s=1234.0)
        )
        assert events and all(e.message.ttl_s == 1234.0 for e in events)

    def test_sizes_within_twitter_limit(self):
        events = generate_message_events(
            star_trace(), twitter_trends_2009(), WorkloadConfig(ttl_s=3600)
        )
        assert all(1 <= e.message.size_bytes <= 140 for e in events)

    def test_source_matches_event_node(self):
        events = generate_message_events(
            star_trace(), twitter_trends_2009(), WorkloadConfig(ttl_s=3600)
        )
        assert all(e.message.source == e.node for e in events)

    def test_hub_generates_more(self):
        trace = star_trace(leaves=6, meetings=8)
        events = generate_message_events(
            trace, twitter_trends_2009(), WorkloadConfig(ttl_s=3600, seed=2)
        )
        per_node = {n: 0 for n in trace.nodes}
        for e in events:
            per_node[e.node] += 1
        leaves_mean = sum(per_node[i] for i in range(1, 7)) / 6
        assert per_node[0] > 2 * leaves_mean

    def test_generation_horizon(self):
        trace = star_trace(leaves=6, meetings=8)
        config = WorkloadConfig(ttl_s=3600, generation_horizon_fraction=0.5)
        events = generate_message_events(trace, twitter_trends_2009(), config)
        horizon = trace.start_time + 0.5 * trace.duration
        assert all(e.time < horizon for e in events)

    def test_multi_key_messages(self):
        config = WorkloadConfig(ttl_s=3600, keys_per_message=3)
        events = generate_message_events(
            star_trace(), twitter_trends_2009(), config
        )
        assert events
        assert all(1 <= len(e.message.keys) <= 3 for e in events)

    def test_expected_volume(self):
        """Total messages ≈ Σ_v rate_v × duration."""
        trace = star_trace(leaves=6, meetings=10)
        config = WorkloadConfig(ttl_s=3600, seed=11)
        rates = message_rates(trace, config)
        expected = sum(rates.values()) * trace.duration
        events = generate_message_events(trace, twitter_trends_2009(), config)
        assert len(events) == pytest.approx(expected, rel=0.25)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(ttl_s=0)
        with pytest.raises(ValueError):
            WorkloadConfig(ttl_s=1, min_rate_per_s=0)
        with pytest.raises(ValueError):
            WorkloadConfig(ttl_s=1, keys_per_message=0)
        with pytest.raises(ValueError):
            WorkloadConfig(ttl_s=1, generation_horizon_fraction=0.0)
        with pytest.raises(ValueError):
            WorkloadConfig(ttl_s=1, max_message_bytes=0)
