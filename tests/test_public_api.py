"""Public-API surface tests.

The README and examples promise these import paths; a rename that
breaks them should fail loudly here, not in a user's code.
"""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.1.0"

    def test_headline_exports(self):
        for name in (
            "TemporalCountingBloomFilter",
            "BloomFilter",
            "CountingBloomFilter",
            "HashFamily",
            "TCBFCollection",
            "BsubProtocol",
            "BsubConfig",
            "PushProtocol",
            "PullProtocol",
            "Message",
            "MetricsCollector",
        ):
            assert hasattr(repro, name), name

    def test_all_is_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_lazy_exports_listed_by_dir(self):
        # The typed API loads lazily (PEP 562) but must still be
        # discoverable.
        for name in ("ExperimentSpec", "run", "sweep", "replicate",
                     "resilience", "FaultSpec", "ServeSpec", "LoadSpec",
                     "serve", "load"):
            assert name in dir(repro), name


class TestSurfaceSnapshot:
    """Exact export snapshots: adding or removing a name is an API event.

    If one of these fails because of a *deliberate* surface change,
    re-pin the list here and call the change out in the PR description.
    """

    def test_top_level_all(self):
        assert sorted(repro.__all__) == [
            "BloomFilter", "BsubConfig", "BsubProtocol",
            "CountingBloomFilter", "ExperimentSpec", "FaultSpec",
            "HashFamily", "LoadSpec", "Message", "MetricsCollector",
            "PullProtocol", "PushProtocol", "ServeSpec", "TCBFCollection",
            "TemporalCountingBloomFilter", "__version__", "load",
            "replicate", "resilience", "run", "serve", "sweep",
        ]

    def test_api_module_all(self):
        import repro.api

        assert sorted(repro.api.__all__) == [
            "ExperimentSpec", "LoadSpec", "ServeSpec", "load",
            "replicate", "resilience", "run", "serve", "sweep",
        ]

    def test_faults_module_all(self):
        import repro.faults

        assert sorted(repro.faults.__all__) == [
            "ChurnEvent", "ChurnSchedule", "FaultAccounting", "FaultPlan",
            "FaultSpec", "FaultyContactChannel", "NO_FAULTS",
        ]

    def test_entry_point_signatures(self):
        import inspect

        from repro import api

        def params(fn):
            return list(inspect.signature(fn).parameters)

        assert params(api.run) == ["trace", "spec", "distribution", "obs"]
        assert params(api.sweep) == [
            "trace", "spec", "ttl_min", "df_per_min", "protocols", "jobs",
            "distribution",
        ]
        assert params(api.replicate) == [
            "trace_factory", "spec", "seeds", "jobs", "distribution",
        ]
        assert params(api.resilience) == [
            "trace", "spec", "distribution", "obs",
        ]
        assert params(api.serve) == ["spec", "duration_s", "registry"]
        assert params(api.load) == ["spec", "distribution"]

    def test_experiment_spec_fields(self):
        import dataclasses

        from repro.api import ExperimentSpec

        names = [f.name for f in dataclasses.fields(ExperimentSpec)]
        assert names[:3] == ["protocol", "ttl_min", "df_per_min"]
        assert "faults" in names
        # Normalised names only — the aliases live at call sites.
        assert "num_bits" in names and "m" not in names
        assert "num_hashes" in names and "k" not in names

    def test_serve_spec_fields(self):
        import dataclasses

        from repro.api import LoadSpec, ServeSpec

        serve_names = [f.name for f in dataclasses.fields(ServeSpec)]
        assert serve_names[:2] == ["host", "port"]
        for name in ("matching", "filter_spec", "faults", "idle_timeout_s",
                     "max_frame_bytes", "trace_path", "metrics_port"):
            assert name in serve_names, name
        # Normalised names only — m/k/df aliases live in parse().
        assert "num_bits" in serve_names and "m" not in serve_names
        assert "num_hashes" in serve_names and "k" not in serve_names
        load_names = [f.name for f in dataclasses.fields(LoadSpec)]
        for name in ("sessions", "publisher_fraction", "duration_s",
                     "arrival", "seed", "faults"):
            assert name in load_names, name

    def test_filter_constructors_accept_aliases(self):
        import inspect

        from repro import BloomFilter, TemporalCountingBloomFilter

        for cls in (BloomFilter, TemporalCountingBloomFilter):
            params = inspect.signature(cls.__init__).parameters
            assert "num_bits" in params and "m" in params, cls.__name__
            assert "num_hashes" in params and "k" in params, cls.__name__
            assert params["m"].kind is inspect.Parameter.KEYWORD_ONLY
        tcbf_of = inspect.signature(TemporalCountingBloomFilter.of).parameters
        assert "df" in tcbf_of and tcbf_of["df"].kind is \
            inspect.Parameter.KEYWORD_ONLY


class TestSubpackageSurfaces:
    @pytest.mark.parametrize(
        "module, names",
        [
            ("repro.core", [
                "TemporalCountingBloomFilter", "BloomFilter", "HashFamily",
                "false_positive_rate", "recommended_decay_factor",
                "plan_allocation", "encode_tcbf", "decode_tcbf",
            ]),
            ("repro.pubsub", [
                "BsubProtocol", "BrokerElection", "StaticBrokerSet",
                "SprayAndWaitProtocol", "ExactInterestRelay",
                "AdaptiveDecayConfig", "MetricsSummary",
            ]),
            ("repro.dtn", [
                "Simulation", "Protocol", "ContactChannel", "MessageEvent",
                "EnergyModel", "BLUETOOTH_CLASS2_MODEL",
                "BLUETOOTH_EFFECTIVE_BPS",
            ]),
            ("repro.traces", [
                "ContactTrace", "Contact", "haggle_like", "mit_reality_like",
                "simulate_mobility", "MobilityConfig", "load_csv_trace",
                "compute_stats",
            ]),
            ("repro.social", [
                "ContactGraph", "degree_centrality", "label_propagation",
                "modularity",
            ]),
            ("repro.workload", [
                "twitter_trends_2009", "KeyDistribution", "assign_interests",
                "generate_message_events",
            ]),
            ("repro.experiments", [
                "ExperimentConfig", "run_experiment", "ttl_sweep", "df_sweep",
                "run_replicated", "format_table_i", "format_table_ii",
                "ascii_chart", "ALL_PROTOCOLS",
            ]),
            ("repro.api", [
                "ExperimentSpec", "ServeSpec", "LoadSpec", "run", "sweep",
                "replicate", "resilience", "serve", "load",
            ]),
            ("repro.serve", [
                "ServeSpec", "LoadSpec", "SessionContext", "BrokerCore",
                "BrokerServer", "Dispatcher", "LoadDriver", "LoadReport",
                "ProtocolError", "run_broker", "run_load", "BROKER_NODE_ID",
            ]),
            ("repro.faults", [
                "FaultSpec", "FaultPlan", "FaultyContactChannel",
                "ChurnEvent", "ChurnSchedule", "FaultAccounting", "NO_FAULTS",
            ]),
        ],
    )
    def test_surface(self, module, names):
        mod = importlib.import_module(module)
        for name in names:
            assert hasattr(mod, name), f"{module}.{name}"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core", "repro.pubsub", "repro.dtn", "repro.traces",
            "repro.social", "repro.workload", "repro.experiments",
            "repro.api", "repro.faults", "repro.serve",
        ],
    )
    def test_all_lists_resolve(self, module):
        mod = importlib.import_module(module)
        for name in mod.__all__:
            assert getattr(mod, name, None) is not None, f"{module}.{name}"

    def test_cli_entry_point(self):
        from repro.cli import build_parser, main

        assert callable(main)
        assert build_parser().prog == "repro"


class TestDocstrings:
    """Every public module and class documents itself."""

    @pytest.mark.parametrize(
        "module",
        [
            "repro", "repro.core.tcbf", "repro.core.bloom",
            "repro.core.analysis", "repro.core.allocation",
            "repro.core.serialization", "repro.pubsub.protocol",
            "repro.pubsub.broker_allocation", "repro.pubsub.baselines",
            "repro.pubsub.metrics", "repro.pubsub.wire",
            "repro.pubsub.adaptive", "repro.pubsub.exact",
            "repro.pubsub.extra_baselines", "repro.dtn.simulator",
            "repro.dtn.energy", "repro.traces.synthetic",
            "repro.traces.mobility", "repro.social.communities",
            "repro.workload.keys", "repro.experiments.runner",
            "repro.experiments.resilience", "repro.api", "repro.faults.spec",
            "repro.faults.channel", "repro.faults.churn", "repro.faults.plan",
            "repro.cli", "repro.serve", "repro.serve.spec",
            "repro.serve.session", "repro.serve.dispatcher",
            "repro.serve.broker", "repro.serve.load",
        ],
    )
    def test_module_docstrings(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 40, module

    def test_core_classes_documented(self):
        from repro.core import TemporalCountingBloomFilter
        from repro.pubsub import BsubProtocol

        for cls in (TemporalCountingBloomFilter, BsubProtocol):
            assert cls.__doc__
            for name, member in vars(cls).items():
                if name.startswith("_") or not callable(member):
                    continue
                assert member.__doc__, f"{cls.__name__}.{name} lacks a docstring"
