"""Public-API surface tests.

The README and examples promise these import paths; a rename that
breaks them should fail loudly here, not in a user's code.
"""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_headline_exports(self):
        for name in (
            "TemporalCountingBloomFilter",
            "BloomFilter",
            "CountingBloomFilter",
            "HashFamily",
            "TCBFCollection",
            "BsubProtocol",
            "BsubConfig",
            "PushProtocol",
            "PullProtocol",
            "Message",
            "MetricsCollector",
        ):
            assert hasattr(repro, name), name

    def test_all_is_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name


class TestSubpackageSurfaces:
    @pytest.mark.parametrize(
        "module, names",
        [
            ("repro.core", [
                "TemporalCountingBloomFilter", "BloomFilter", "HashFamily",
                "false_positive_rate", "recommended_decay_factor",
                "plan_allocation", "encode_tcbf", "decode_tcbf",
            ]),
            ("repro.pubsub", [
                "BsubProtocol", "BrokerElection", "StaticBrokerSet",
                "SprayAndWaitProtocol", "ExactInterestRelay",
                "AdaptiveDecayConfig", "MetricsSummary",
            ]),
            ("repro.dtn", [
                "Simulation", "Protocol", "ContactChannel", "MessageEvent",
                "EnergyModel", "BLUETOOTH_CLASS2_MODEL",
                "BLUETOOTH_EFFECTIVE_BPS",
            ]),
            ("repro.traces", [
                "ContactTrace", "Contact", "haggle_like", "mit_reality_like",
                "simulate_mobility", "MobilityConfig", "load_csv_trace",
                "compute_stats",
            ]),
            ("repro.social", [
                "ContactGraph", "degree_centrality", "label_propagation",
                "modularity",
            ]),
            ("repro.workload", [
                "twitter_trends_2009", "KeyDistribution", "assign_interests",
                "generate_message_events",
            ]),
            ("repro.experiments", [
                "ExperimentConfig", "run_experiment", "ttl_sweep", "df_sweep",
                "run_replicated", "format_table_i", "format_table_ii",
                "ascii_chart", "ALL_PROTOCOLS",
            ]),
        ],
    )
    def test_surface(self, module, names):
        mod = importlib.import_module(module)
        for name in names:
            assert hasattr(mod, name), f"{module}.{name}"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core", "repro.pubsub", "repro.dtn", "repro.traces",
            "repro.social", "repro.workload", "repro.experiments",
        ],
    )
    def test_all_lists_resolve(self, module):
        mod = importlib.import_module(module)
        for name in mod.__all__:
            assert getattr(mod, name, None) is not None, f"{module}.{name}"

    def test_cli_entry_point(self):
        from repro.cli import build_parser, main

        assert callable(main)
        assert build_parser().prog == "repro"


class TestDocstrings:
    """Every public module and class documents itself."""

    @pytest.mark.parametrize(
        "module",
        [
            "repro", "repro.core.tcbf", "repro.core.bloom",
            "repro.core.analysis", "repro.core.allocation",
            "repro.core.serialization", "repro.pubsub.protocol",
            "repro.pubsub.broker_allocation", "repro.pubsub.baselines",
            "repro.pubsub.metrics", "repro.pubsub.wire",
            "repro.pubsub.adaptive", "repro.pubsub.exact",
            "repro.pubsub.extra_baselines", "repro.dtn.simulator",
            "repro.dtn.energy", "repro.traces.synthetic",
            "repro.traces.mobility", "repro.social.communities",
            "repro.workload.keys", "repro.experiments.runner",
            "repro.cli",
        ],
    )
    def test_module_docstrings(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 40, module

    def test_core_classes_documented(self):
        from repro.core import TemporalCountingBloomFilter
        from repro.pubsub import BsubProtocol

        for cls in (TemporalCountingBloomFilter, BsubProtocol):
            assert cls.__doc__
            for name, member in vars(cls).items():
                if name.startswith("_") or not callable(member):
                    continue
                assert member.__doc__, f"{cls.__name__}.{name} lacks a docstring"
