"""Feature-combination tests.

Every optional mechanism (multi-filter relays, adaptive DF, bounded
buffers, raw encoding, static brokers, multi-key messages,
multi-interest consumers) must compose with the others without breaking
protocol invariants.  Each cell of the matrix runs a small end-to-end
simulation and checks the conserved quantities.
"""

import pytest

from repro.experiments import ExperimentConfig, run_experiment
from repro.pubsub.adaptive import AdaptiveDecayConfig
from repro.traces.synthetic import haggle_like


@pytest.fixture(scope="module")
def trace():
    return haggle_like(scale=0.02, seed=42)


def run(trace, **overrides):
    defaults = dict(ttl_min=300.0, min_rate_per_s=1 / 7200.0)
    defaults.update(overrides)
    return run_experiment(trace, "B-SUB", ExperimentConfig(**defaults))


def assert_sane(result):
    summary = result.summary
    assert summary.num_messages > 0
    assert 0.0 <= summary.delivery_ratio <= 1.0
    assert summary.num_intended_deliveries <= summary.num_intended_pairs
    assert summary.num_deliveries == (
        summary.num_intended_deliveries + summary.num_false_deliveries
    )
    assert result.engine.bytes_transferred >= 0


class TestSingleFeatures:
    def test_baseline(self, trace):
        assert_sane(run(trace))

    def test_multi_filter_relay(self, trace):
        assert_sane(run(trace, relay_fill_threshold=0.25, relay_max_filters=4))

    def test_adaptive_df(self, trace):
        assert_sane(
            run(
                trace,
                decay_factor_per_min=0.1,
                adaptive_df=AdaptiveDecayConfig(target_fpr=0.01),
            )
        )

    def test_bounded_buffers(self, trace):
        assert_sane(run(trace, carried_capacity=25))

    def test_reject_eviction(self, trace):
        assert_sane(run(trace, carried_capacity=25, eviction="reject"))

    def test_raw_encoding(self, trace):
        result = run(trace, interest_encoding="raw")
        assert_sane(result)
        assert result.summary.false_positive_ratio == 0.0

    def test_static_brokers(self, trace):
        brokers = tuple(range(0, 79, 3))
        result = run(trace, static_brokers=brokers)
        assert_sane(result)
        assert result.broker_fraction == pytest.approx(len(brokers) / 79)

    def test_multi_key_messages(self, trace):
        assert_sane(run(trace, keys_per_message=3))

    def test_multi_interest_consumers(self, trace):
        assert_sane(run(trace, interests_per_node=3))


class TestCombinations:
    def test_collection_plus_adaptive_plus_buffers(self, trace):
        result = run(
            trace,
            relay_fill_threshold=0.25,
            relay_max_filters=3,
            decay_factor_per_min=0.1,
            adaptive_df=AdaptiveDecayConfig(target_fpr=0.01, interval_s=900.0),
            carried_capacity=30,
        )
        assert_sane(result)

    def test_raw_plus_buffers_plus_static(self, trace):
        result = run(
            trace,
            interest_encoding="raw",
            carried_capacity=20,
            eviction="reject",
            static_brokers=tuple(range(0, 79, 4)),
        )
        assert_sane(result)
        assert result.summary.false_injection_ratio == 0.0

    def test_multikey_plus_multiinterest_plus_collection(self, trace):
        result = run(
            trace,
            keys_per_message=2,
            interests_per_node=2,
            relay_fill_threshold=0.3,
        )
        assert_sane(result)
        # richer matching surface -> more intended pairs per message
        assert result.summary.num_intended_pairs > result.summary.num_messages

    def test_amerge_ablation_plus_adaptive(self, trace):
        result = run(
            trace,
            broker_broker_additive_merge=True,
            decay_factor_per_min=0.2,
            adaptive_df=AdaptiveDecayConfig(target_fpr=0.02),
        )
        assert_sane(result)

    def test_raw_forbids_collection(self, trace):
        with pytest.raises(ValueError, match="only applies"):
            run(trace, interest_encoding="raw", relay_fill_threshold=0.3)

    def test_everything_at_once(self, trace):
        result = run(
            trace,
            keys_per_message=2,
            interests_per_node=2,
            relay_fill_threshold=0.3,
            relay_max_filters=3,
            decay_factor_per_min=0.15,
            adaptive_df=AdaptiveDecayConfig(target_fpr=0.02, interval_s=1200.0),
            carried_capacity=40,
            push_buffer_capacity=40,  # harmless for B-SUB
        )
        assert_sane(result)


class TestWorkloadConsistencyAcrossFeatures:
    def test_same_workload_regardless_of_protocol_options(self, trace):
        plain = run(trace)
        fancy = run(
            trace, relay_fill_threshold=0.3, carried_capacity=30
        )
        assert plain.summary.num_messages == fancy.summary.num_messages
        assert (
            plain.summary.num_intended_pairs == fancy.summary.num_intended_pairs
        )
