"""Tests for the contact graph."""

import pytest

from repro.social.graph import ContactGraph

from ..conftest import make_trace


@pytest.fixture
def graph(line_trace):
    return ContactGraph.from_trace(line_trace)


class TestConstruction:
    def test_nodes_preserved(self, graph, line_trace):
        assert graph.nodes == line_trace.nodes

    def test_edges_undirected(self, graph):
        assert graph.has_edge(0, 1) and graph.has_edge(1, 0)
        assert not graph.has_edge(0, 2)

    def test_edge_count(self, graph):
        assert graph.num_edges() == 3

    def test_degree_counts_distinct_peers(self, graph):
        assert graph.degree(1) == 2
        assert graph.degree(3) == 1

    def test_edge_stats_aggregate(self):
        trace = make_trace(
            [(0.0, 10.0, 0, 1), (100.0, 20.0, 0, 1), (200.0, 5.0, 1, 2)]
        )
        graph = ContactGraph.from_trace(trace)
        edge = graph.edge(0, 1)
        assert edge.meetings == 2
        assert edge.total_duration_s == 30.0
        assert edge.first_meeting == 0.0
        assert edge.last_meeting == 100.0

    def test_edge_missing_raises(self, graph):
        with pytest.raises(KeyError):
            graph.edge(0, 3)

    def test_meeting_counts(self):
        trace = make_trace([(0.0, 1.0, 0, 1), (5.0, 1.0, 0, 1), (9.0, 1.0, 0, 2)])
        graph = ContactGraph.from_trace(trace)
        assert graph.meeting_counts(0) == {1: 2, 2: 1}

    def test_neighbours(self, graph):
        assert graph.neighbours(1) == {0, 2}

    def test_edges_iterator_canonical_order(self, graph):
        for a, b, _ in graph.edges():
            assert a < b

    def test_to_networkx(self, graph):
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == 4
        assert nx_graph.number_of_edges() == 3
        assert nx_graph.edges[0, 1]["meetings"] == 1
