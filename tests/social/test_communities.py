"""Tests for community detection."""

import pytest

from repro.social.communities import community_sets, label_propagation, modularity
from repro.social.graph import ContactGraph

from ..conftest import make_trace


def two_cliques_trace():
    """Two internally dense groups joined by a single weak edge."""
    contacts = []
    t = 0.0
    for group in ([0, 1, 2, 3], [4, 5, 6, 7]):
        for i in group:
            for j in group:
                if i < j:
                    for _ in range(5):  # strong intra ties
                        contacts.append((t, 10.0, i, j))
                        t += 1.0
    contacts.append((t, 10.0, 3, 4))  # weak bridge
    return make_trace(contacts)


class TestLabelPropagation:
    def test_recovers_two_cliques(self):
        graph = ContactGraph.from_trace(two_cliques_trace())
        labels = label_propagation(graph, seed=1)
        groups = community_sets(labels)
        assert len(groups) == 2
        assert {frozenset(g) for g in groups} == {
            frozenset({0, 1, 2, 3}),
            frozenset({4, 5, 6, 7}),
        }

    def test_labels_dense_from_zero(self):
        graph = ContactGraph.from_trace(two_cliques_trace())
        labels = label_propagation(graph, seed=1)
        assert set(labels.values()) == set(range(len(set(labels.values()))))

    def test_deterministic_per_seed(self):
        graph = ContactGraph.from_trace(two_cliques_trace())
        assert label_propagation(graph, seed=3) == label_propagation(graph, seed=3)

    def test_isolated_node_keeps_own_label(self):
        trace = make_trace([(0.0, 1.0, 0, 1)], nodes=range(3))
        labels = label_propagation(ContactGraph.from_trace(trace))
        assert labels[2] not in {labels[0]}

    def test_invalid_weight(self):
        graph = ContactGraph.from_trace(two_cliques_trace())
        with pytest.raises(ValueError):
            label_propagation(graph, weight="hops")

    def test_duration_weighting_supported(self):
        graph = ContactGraph.from_trace(two_cliques_trace())
        labels = label_propagation(graph, weight="duration", seed=1)
        assert len(community_sets(labels)) == 2


class TestModularity:
    def test_good_partition_positive(self):
        graph = ContactGraph.from_trace(two_cliques_trace())
        labels = {n: 0 if n < 4 else 1 for n in graph.nodes}
        assert modularity(graph, labels) > 0.3

    def test_single_community_zero_or_negative(self):
        graph = ContactGraph.from_trace(two_cliques_trace())
        labels = {n: 0 for n in graph.nodes}
        assert modularity(graph, labels) <= 0.0 + 1e-9

    def test_detected_partition_beats_trivial(self):
        graph = ContactGraph.from_trace(two_cliques_trace())
        detected = label_propagation(graph, seed=1)
        trivial = {n: 0 for n in graph.nodes}
        assert modularity(graph, detected) > modularity(graph, trivial)

    def test_synthetic_traces_have_community_structure(self):
        """The generator's claim: community structure is real."""
        from repro.traces.synthetic import generate_trace
        from tests.traces.test_synthetic import small_config

        trace = generate_trace(
            small_config(
                num_nodes=30, target_contacts=3000, intra_community_boost=8.0
            )
        )
        graph = ContactGraph.from_trace(trace)
        labels = label_propagation(graph, seed=0)
        assert modularity(graph, labels) > 0.05

    def test_invalid_weight(self):
        graph = ContactGraph.from_trace(two_cliques_trace())
        with pytest.raises(ValueError):
            modularity(graph, {n: 0 for n in graph.nodes}, weight="hops")
