"""Tests for centrality measures."""

import pytest

from repro.social.centrality import (
    contact_time_centrality,
    degree_centrality,
    meeting_centrality,
    normalised,
)
from repro.social.graph import ContactGraph

from ..conftest import make_trace


@pytest.fixture
def star_trace():
    """Node 0 meets everyone; leaves meet only node 0."""
    return make_trace(
        [(i * 10.0, 5.0, 0, i) for i in range(1, 5)]
        + [(100.0, 5.0, 0, 1)],  # extra meeting with node 1
        nodes=range(5),
    )


class TestDegreeCentrality:
    def test_hub_has_highest_degree(self, star_trace):
        centrality = degree_centrality(star_trace)
        assert centrality[0] == 4.0
        assert all(centrality[i] == 1.0 for i in range(1, 5))

    def test_accepts_graph_or_trace(self, star_trace):
        from_trace = degree_centrality(star_trace)
        from_graph = degree_centrality(ContactGraph.from_trace(star_trace))
        assert from_trace == from_graph

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            degree_centrality([1, 2, 3])

    def test_isolated_node_zero(self):
        trace = make_trace([(0.0, 1.0, 0, 1)], nodes=range(3))
        assert degree_centrality(trace)[2] == 0.0


class TestOtherCentralities:
    def test_meeting_centrality_counts_repeats(self, star_trace):
        centrality = meeting_centrality(star_trace)
        assert centrality[0] == 5.0
        assert centrality[1] == 2.0

    def test_contact_time_centrality(self):
        trace = make_trace([(0.0, 10.0, 0, 1), (20.0, 30.0, 0, 2)])
        centrality = contact_time_centrality(trace)
        assert centrality[0] == 40.0
        assert centrality[1] == 10.0
        assert centrality[2] == 30.0


class TestNormalised:
    def test_peak_is_one(self, star_trace):
        norm = normalised(degree_centrality(star_trace))
        assert max(norm.values()) == 1.0
        assert norm[1] == 0.25

    def test_all_zero_passes_through(self):
        assert normalised({0: 0.0, 1: 0.0}) == {0: 0.0, 1: 0.0}
