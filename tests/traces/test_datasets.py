"""On-disk trace datasets: chunked writer, round trips, city generator.

A dataset directory is four ``.npy`` column sidecars plus ``meta.json``.
The writer streams chunks and back-patches the headers on close, so
the resulting files must be loadable by stock numpy; ``open`` must be
able to hand back any row window; and the city generator must emit a
globally sorted, invariant-respecting stream deterministically.
"""

import json

import numpy as np
import pytest

from repro.traces import (
    ChunkedTraceWriter,
    ContactTrace,
    haggle_like,
    open_trace_dataset,
    save_trace_dataset,
)
from repro.traces.backends import TRACE_BACKENDS, TRACE_COLUMN_NAMES
from repro.traces.loaders import TRACE_DATASET_META
from repro.traces.model import Contact
from repro.traces.synthetic import CityTraceConfig, generate_city_trace


def _write(path, rows, **kwargs):
    with ChunkedTraceWriter(path, **kwargs) as writer:
        for chunk in rows:
            writer.append(*chunk)
    return writer


class TestChunkedTraceWriter:
    def test_columns_are_stock_npy_files(self, tmp_path):
        path = tmp_path / "ds"
        _write(path, [
            ([0.0, 5.0], [2.0, 3.0], [0, 1], [1, 2]),
            ([9.0], [1.0], [3], [0]),
        ])
        for name in TRACE_COLUMN_NAMES:
            column = np.load(path / f"{name}.npy")
            assert column.shape == (3,)
        assert np.load(path / "start.npy").tolist() == [0.0, 5.0, 9.0]
        meta = json.loads((path / TRACE_DATASET_META).read_text())
        assert meta["num_contacts"] == 3

    def test_unsorted_chunk_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="order"):
            _write(tmp_path / "ds", [
                ([5.0, 1.0], [1.0, 1.0], [0, 1], [1, 2]),
            ])

    def test_unsorted_across_chunks_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="order"):
            _write(tmp_path / "ds", [
                ([5.0], [1.0], [0], [1]),
                ([1.0], [1.0], [1], [2]),
            ])

    def test_self_contact_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="differ"):
            _write(tmp_path / "ds", [([0.0], [1.0], [3], [3])])

    def test_swapped_endpoints_canonicalised(self, tmp_path):
        path = tmp_path / "ds"
        _write(path, [([0.0], [1.0], [7], [2])])
        trace = open_trace_dataset(path)
        assert (trace.contacts[0].a, trace.contacts[0].b) == (2, 7)

    def test_failed_write_leaves_no_meta(self, tmp_path):
        path = tmp_path / "ds"
        with pytest.raises(ValueError):
            _write(path, [
                ([0.0], [1.0], [0], [1]),
                ([5.0], [-1.0], [1], [2]),
            ])
        assert not (path / TRACE_DATASET_META).exists()

    def test_empty_dataset(self, tmp_path):
        path = tmp_path / "ds"
        _write(path, [])
        trace = open_trace_dataset(path)
        assert trace.num_contacts == 0


class TestDatasetRoundTrip:
    @pytest.fixture(scope="class")
    def reference(self):
        return haggle_like(scale=0.02, seed=3)

    @pytest.mark.parametrize("backend", TRACE_BACKENDS)
    def test_save_open_identity(self, tmp_path, reference, backend):
        path = tmp_path / "ds"
        save_trace_dataset(reference, path, chunk_size=501)
        reopened = open_trace_dataset(path, backend=backend)
        assert reopened.backend == backend
        assert reopened.num_contacts == reference.num_contacts
        assert reopened.nodes == reference.nodes
        assert list(reopened) == list(reference)

    def test_row_window(self, tmp_path, reference):
        path = tmp_path / "ds"
        save_trace_dataset(reference, path)
        window = open_trace_dataset(path, lo=10, hi=25)
        assert list(window) == list(reference)[10:25]

    def test_named_nodes_round_trip(self, tmp_path):
        contacts = [
            Contact.make(start=0.0, duration=1.0, a=4, b=9),
        ]
        trace = ContactTrace(contacts, nodes=[1, 4, 9, 16], name="sparse")
        path = tmp_path / "ds"
        save_trace_dataset(trace, path)
        reopened = open_trace_dataset(path, name="sparse")
        assert list(reopened.nodes) == [1, 4, 9, 16]
        assert reopened.name == "sparse"


class TestCityGenerator:
    CONFIG = CityTraceConfig(
        num_nodes=500,
        duration_days=1.0,
        target_contacts=20_000,
        num_communities=20,
        seed=9,
        name="mini-city",
    )

    @pytest.fixture(scope="class")
    def trace(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("city") / "ds"
        return generate_city_trace(self.CONFIG, path)

    def test_lands_near_target(self, trace):
        assert 0.8 * 20_000 <= trace.num_contacts <= 1.2 * 20_000

    def test_invariants(self, trace):
        start, duration, a, b = trace._store.columns()
        assert (np.diff(start) >= 0).all()
        assert (duration >= self.CONFIG.min_contact_duration_s).all()
        assert (a != b).all()
        assert (a < b).all()
        assert int(max(a.max(), b.max())) < self.CONFIG.num_nodes
        assert float(start[-1]) < self.CONFIG.duration_days * 86_400.0

    def test_deterministic(self, trace, tmp_path):
        again = generate_city_trace(self.CONFIG, tmp_path / "ds2")
        for ours, theirs in zip(trace._store.columns(),
                                again._store.columns()):
            assert np.array_equal(np.asarray(ours), np.asarray(theirs))

    def test_small_window_chunks_stay_sorted(self, tmp_path):
        # Force many sub-window emissions: every hour window overflows
        # max_window_rows, exercising the count-proportional splits.
        trace = generate_city_trace(
            self.CONFIG, tmp_path / "ds", max_window_rows=256
        )
        start = np.asarray(trace._store.columns()[0])
        assert (np.diff(start) >= 0).all()
        assert trace.num_contacts > 0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            CityTraceConfig(num_nodes=1)
        with pytest.raises(ValueError):
            CityTraceConfig(intra_community_p=1.5)
