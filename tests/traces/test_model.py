"""Tests for the contact-trace model."""

import pytest

from repro.traces.model import Contact, ContactTrace

from ..conftest import make_trace


class TestContact:
    def test_make_canonicalises_pair(self):
        c = Contact.make(10.0, 5.0, 7, 2)
        assert (c.a, c.b) == (2, 7)
        assert c.pair == (2, 7)

    def test_end_time(self):
        assert Contact.make(10.0, 5.0, 0, 1).end == 15.0

    def test_rejects_self_contact(self):
        with pytest.raises(ValueError, match="differ"):
            Contact.make(0.0, 1.0, 3, 3)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError, match="duration"):
            Contact.make(0.0, 0.0, 0, 1)

    def test_involves_and_peer_of(self):
        c = Contact.make(0.0, 1.0, 2, 5)
        assert c.involves(2) and c.involves(5) and not c.involves(3)
        assert c.peer_of(2) == 5
        assert c.peer_of(5) == 2
        with pytest.raises(ValueError):
            c.peer_of(9)

    def test_ordering_by_start(self):
        early = Contact.make(1.0, 1.0, 0, 1)
        late = Contact.make(2.0, 1.0, 0, 1)
        assert early < late


class TestContactTrace:
    def test_sorts_contacts(self):
        trace = make_trace([(300.0, 1.0, 0, 1), (100.0, 1.0, 1, 2)])
        starts = [c.start for c in trace]
        assert starts == sorted(starts)

    def test_nodes_inferred_from_contacts(self):
        trace = make_trace([(0.0, 1.0, 3, 7)])
        assert trace.nodes == (3, 7)

    def test_explicit_population_can_be_wider(self):
        trace = make_trace([(0.0, 1.0, 0, 1)], nodes=range(5))
        assert trace.num_nodes == 5

    def test_population_must_cover_contacts(self):
        with pytest.raises(ValueError, match="outside the population"):
            make_trace([(0.0, 1.0, 0, 9)], nodes=range(3))

    def test_duration_and_times(self, line_trace):
        assert line_trace.start_time == 100.0
        assert line_trace.end_time == 560.0
        assert line_trace.duration == 460.0

    def test_empty_trace(self):
        trace = ContactTrace([], nodes=range(2))
        assert trace.duration == 0.0
        assert trace.num_contacts == 0

    def test_slice_half_open(self, line_trace):
        sliced = line_trace.slice(100.0, 500.0)
        assert sliced.num_contacts == 2
        assert sliced.nodes == line_trace.nodes  # population preserved

    def test_slice_invalid(self, line_trace):
        with pytest.raises(ValueError):
            line_trace.slice(10.0, 5.0)

    def test_first_days(self):
        day = 86_400.0
        trace = make_trace(
            [(0.0, 1.0, 0, 1), (2 * day, 1.0, 0, 1), (5 * day, 1.0, 0, 1)]
        )
        assert trace.first_days(3).num_contacts == 2

    def test_shifted_and_normalised(self, line_trace):
        normalised = line_trace.normalised()
        assert normalised.start_time == 0.0
        assert normalised.num_contacts == line_trace.num_contacts
        assert normalised.duration == line_trace.duration

    def test_contacts_of_and_neighbours(self, line_trace):
        assert len(line_trace.contacts_of(1)) == 2
        assert line_trace.neighbours(1) == {0, 2}
        assert line_trace.neighbours(3) == {2}

    def test_pair_contact_counts(self):
        trace = make_trace(
            [(0.0, 1.0, 0, 1), (10.0, 1.0, 1, 0), (20.0, 1.0, 1, 2)]
        )
        counts = trace.pair_contact_counts()
        assert counts[(0, 1)] == 2
        assert counts[(1, 2)] == 1

    def test_len_and_iter(self, line_trace):
        assert len(line_trace) == 3
        assert all(isinstance(c, Contact) for c in line_trace)

    def test_repr(self, line_trace):
        assert "nodes=4" in repr(line_trace)
