"""Tests for the community-based mobility simulator."""

import numpy as np
import pytest

from repro.traces.mobility import MobilityConfig, simulate_mobility


def config(**overrides):
    defaults = dict(
        num_nodes=20,
        duration_s=1800.0,
        area_m=200.0,
        grid=3,
        num_communities=3,
        time_step_s=5.0,
        seed=3,
        name="mob-test",
    )
    defaults.update(overrides)
    return MobilityConfig(**defaults)


class TestValidation:
    def test_rejects_too_many_communities(self):
        with pytest.raises(ValueError, match="lattice"):
            config(grid=2, num_communities=5)

    def test_rejects_bad_speeds(self):
        with pytest.raises(ValueError):
            config(speed_min=2.0, speed_max=1.0)
        with pytest.raises(ValueError):
            config(speed_min=0.0)

    def test_rejects_bad_bias(self):
        with pytest.raises(ValueError):
            config(home_bias=1.5)

    def test_rejects_bad_pauses(self):
        with pytest.raises(ValueError):
            config(pause_min_s=100.0, pause_max_s=10.0)

    def test_rejects_degenerate_population(self):
        with pytest.raises(ValueError):
            config(num_nodes=1)


class TestSimulation:
    def test_deterministic(self):
        a = simulate_mobility(config())
        b = simulate_mobility(config())
        assert a.num_contacts == b.num_contacts
        assert [(c.start, c.pair) for c in a] == [(c.start, c.pair) for c in b]

    def test_different_seeds_differ(self):
        a = simulate_mobility(config(seed=1))
        b = simulate_mobility(config(seed=2))
        assert [(c.start, c.pair) for c in a] != [(c.start, c.pair) for c in b]

    def test_produces_contacts(self):
        trace = simulate_mobility(config())
        assert trace.num_contacts > 0
        assert trace.num_nodes == 20

    def test_contacts_within_duration(self):
        cfg = config()
        trace = simulate_mobility(cfg)
        assert all(0 <= c.start <= cfg.duration_s for c in trace)
        assert all(c.end <= cfg.duration_s + cfg.time_step_s for c in trace)

    def test_durations_at_least_one_step(self):
        cfg = config()
        trace = simulate_mobility(cfg)
        assert all(c.duration >= cfg.time_step_s for c in trace)

    def test_no_overlapping_intervals_per_pair(self):
        trace = simulate_mobility(config(duration_s=3600.0))
        by_pair = {}
        for c in trace:
            by_pair.setdefault(c.pair, []).append(c)
        for intervals in by_pair.values():
            intervals.sort(key=lambda c: c.start)
            for earlier, later in zip(intervals, intervals[1:]):
                assert later.start >= earlier.end

    def test_home_bias_concentrates_contacts_in_community(self):
        """High home bias should make contacts mostly intra-community."""
        cfg = config(
            num_nodes=30, home_bias=0.95, duration_s=3600.0, seed=5
        )
        rng = np.random.default_rng(cfg.seed)
        rng.permutation(cfg.grid * cfg.grid)  # consume, as the model does
        community = rng.integers(0, cfg.num_communities, size=cfg.num_nodes)
        trace = simulate_mobility(cfg)
        assert trace.num_contacts > 10
        intra = sum(1 for c in trace if community[c.a] == community[c.b])
        assert intra / trace.num_contacts > 0.6

    def test_zero_home_bias_mixes_communities(self):
        roaming = simulate_mobility(
            config(home_bias=0.0, duration_s=3600.0, num_nodes=30, seed=6)
        )
        # with pure random waypoints, cross-community contacts happen
        assert roaming.num_contacts > 0

    def test_contact_range_scales_contact_count(self):
        short = simulate_mobility(config(tx_range_m=5.0))
        long = simulate_mobility(config(tx_range_m=30.0))
        assert long.num_contacts > short.num_contacts

    def test_trace_runs_through_the_simulator(self):
        """A mobility-derived trace drops into the experiment runner."""
        from repro.experiments import ExperimentConfig, run_experiment

        trace = simulate_mobility(config(duration_s=3600.0))
        result = run_experiment(
            trace, "PUSH", ExperimentConfig(ttl_min=30.0, min_rate_per_s=1 / 600.0)
        )
        assert result.summary.num_messages > 0

    def test_community_structure_detectable(self):
        """The mobility model should produce detectable communities."""
        from repro.social import ContactGraph, label_propagation, modularity

        trace = simulate_mobility(
            config(num_nodes=30, home_bias=0.9, duration_s=7200.0, seed=8)
        )
        graph = ContactGraph.from_trace(trace)
        labels = label_propagation(graph, seed=0)
        assert modularity(graph, labels) > 0.1
