"""Bounded-memory guard: a 10M-contact pipeline stays out of RAM.

Generates a ≥10⁷-contact city dataset straight to disk, opens it
memory-mapped, and replays it sharded — asserting the whole pipeline's
*anonymous* memory growth (``RssAnon`` from ``/proc/self/status``,
which excludes reclaimable file-backed mmap pages) stays under a
ceiling an in-RAM copy could not meet: the four columnar arrays alone
would be ``10M × 32 B = 320 MB``.

This is the regression guard for the out-of-core path: any accidental
materialisation (a stray ``np.array`` copy of a column, an object-list
fallback, a merge that concatenates shard rows) blows the ceiling.
"""

import sys

import numpy as np
import pytest

from repro.dtn import PassiveProtocol, Simulation
from repro.traces import open_trace_dataset
from repro.traces.synthetic import CityTraceConfig, generate_city_trace

TARGET_CONTACTS = 10_000_000
#: Anonymous-memory growth ceiling for generate + open + replay.  The
#: pipeline measures ~60 MB here; a single in-RAM copy of the columns
#: costs 320 MB, so 256 MB separates "out of core" from "materialised"
#: with margin for allocator noise on both sides.
CEILING_BYTES = 256 * 1024 * 1024

pytestmark = pytest.mark.skipif(
    not sys.platform.startswith("linux"),
    reason="reads RssAnon from /proc/self/status",
)


def _rss_anon_bytes() -> int:
    with open("/proc/self/status") as fh:
        for line in fh:
            if line.startswith("RssAnon:"):
                return int(line.split()[1]) * 1024
    raise RuntimeError("RssAnon not found in /proc/self/status")


def test_ten_million_contacts_in_bounded_memory(tmp_path):
    baseline = _rss_anon_bytes()
    config = CityTraceConfig(
        num_nodes=100_000,
        duration_days=2.0,
        target_contacts=TARGET_CONTACTS,
        num_communities=1_000,
        seed=2,
        name="guard",
    )
    trace = generate_city_trace(config, tmp_path / "ds")
    assert trace.num_contacts >= 0.9 * TARGET_CONTACTS
    generated_growth = _rss_anon_bytes() - baseline

    reopened = open_trace_dataset(tmp_path / "ds")
    report = Simulation(reopened, PassiveProtocol(), shards=8).run()
    replayed_growth = _rss_anon_bytes() - baseline

    assert report.num_contacts == trace.num_contacts
    last_start = float(np.asarray(reopened.store.columns()[0])[-1])
    assert report.end_time >= last_start
    assert generated_growth < CEILING_BYTES, (
        f"generation grew anonymous RSS by {generated_growth >> 20} MB"
    )
    assert replayed_growth < CEILING_BYTES, (
        f"pipeline grew anonymous RSS by {replayed_growth >> 20} MB"
    )
