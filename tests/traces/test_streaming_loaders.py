"""Edge-case tests for the streaming trace loaders.

The loaders validate row by row while appending to compact array
columns, so malformed input must fail with a line-accurate error (not
an opaque numpy one at the end), and odd-but-legal input (out-of-order
rows, empty files, comments) must produce a well-formed trace.
"""

import pytest

from repro.traces.backends import TRACE_BACKENDS
from repro.traces.loaders import load_csv_trace, load_whitespace_trace


class TestMalformedInput:
    def test_truncated_line_reports_lineno(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("n1,n2,0,10\nn2,n3,20\n")
        with pytest.raises(ValueError, match=r"line 2: expected 4 fields"):
            load_csv_trace(path)

    def test_extra_fields_rejected(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("n1,n2,0,10,bogus\n")
        with pytest.raises(ValueError, match="got 5"):
            load_csv_trace(path)

    def test_non_numeric_time_rejected(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("n1,n2,0,10\nn1,n3,soon,later\n")
        with pytest.raises(ValueError):
            load_csv_trace(path)

    def test_self_contact_rejected(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("n1,n1,0,10\n")
        with pytest.raises(ValueError, match="endpoints must differ"):
            load_csv_trace(path)

    def test_whitespace_truncated_line(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("1 2 0 10\n3 4\n")
        with pytest.raises(ValueError, match=r"line 2: expected 4 fields"):
            load_whitespace_trace(path)


class TestOddButLegalInput:
    def test_out_of_order_rows_are_sorted(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("n1,n2,500,520\nn2,n3,100,130\nn1,n3,300,310\n")
        trace = load_csv_trace(path)
        starts = [contact.start for contact in trace]
        assert starts == sorted(starts) == [100.0, 300.0, 500.0]

    def test_empty_file_yields_empty_trace(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        trace = load_csv_trace(path)
        assert trace.num_contacts == 0
        assert trace.num_nodes == 0
        assert trace.end_time == 0.0
        assert list(trace) == []

    def test_header_only_file_yields_empty_trace(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("a,b,start,end\n")
        assert load_csv_trace(path).num_contacts == 0

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# proximity dump\n\n1 2 0 10\n\n# tail comment\n")
        trace = load_whitespace_trace(path)
        assert trace.num_contacts == 1

    def test_swapped_endpoints_canonicalised(self, tmp_path):
        # Labels are relabelled in first-seen order, so "n9" gets id 0
        # and "n1" id 1; the stored pair must still be (min, max).
        path = tmp_path / "trace.csv"
        path.write_text("n9,n1,0,10\nn1,n9,20,30\n")
        trace = load_csv_trace(path)
        assert [contact.pair for contact in trace] == [(0, 1), (0, 1)]

    def test_negative_duration_gets_nominal_second(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("n1,n2,100,40\n")
        trace = load_csv_trace(path)
        assert trace.contacts[0].start == 100.0
        assert trace.contacts[0].duration == 1.0

    @pytest.mark.parametrize("backend", TRACE_BACKENDS)
    def test_backend_argument_respected(self, tmp_path, backend):
        path = tmp_path / "trace.csv"
        path.write_text("n1,n2,0,10\n")
        trace = load_csv_trace(path, backend=backend)
        assert trace.backend == backend
        assert trace.contacts[0].duration == 10.0

    def test_large_stream_round_trip(self, tmp_path):
        # A few thousand rows exercise the chunked append path and the
        # final single sort without building a Contact per row.
        path = tmp_path / "big.csv"
        rows = [
            f"n{i % 50},n{i % 50 + 1},{(7919 * i) % 10_000},"
            f"{(7919 * i) % 10_000 + 5}"
            for i in range(4_000)
        ]
        path.write_text("\n".join(rows) + "\n")
        trace = load_csv_trace(path)
        assert trace.num_contacts == 4_000
        starts = [contact.start for contact in trace]
        assert starts == sorted(starts)
