"""Property tests: the object and columnar trace backends are equal.

The columnar backend is a pure storage swap — same contacts, same
order, same derived views — so after any construction and any sequence
of trace transforms the two must agree exactly.  Hypothesis generates
random contact sets and drives both backends in lockstep; a final test
replays both through the simulator and compares the reports.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtn import PassiveProtocol, Simulation
from repro.traces import ContactTrace
from repro.traces.backends import (
    TRACE_BACKEND_ENV_VAR,
    TRACE_BACKENDS,
    default_trace_backend,
    resolve_trace_backend,
)
from repro.traces.model import Contact

contact_st = st.builds(
    Contact.make,
    start=st.floats(0.0, 5_000.0, allow_nan=False, allow_infinity=False),
    duration=st.floats(0.5, 600.0, allow_nan=False, allow_infinity=False),
    a=st.integers(0, 11),
    b=st.integers(12, 23),
)

contacts_st = st.lists(contact_st, min_size=0, max_size=40)


def _twins(contacts):
    return (
        ContactTrace(contacts, name="twin", backend="object"),
        ContactTrace(contacts, name="twin", backend="columnar"),
    )


def _assert_traces_agree(obj, col):
    assert obj.num_contacts == col.num_contacts
    assert obj.nodes == col.nodes
    assert obj.start_time == col.start_time
    assert obj.end_time == col.end_time
    assert list(obj) == list(col)


class TestBackendSelection:
    def test_registry(self):
        assert set(TRACE_BACKENDS) == {"object", "columnar"}

    def test_default_is_columnar(self, monkeypatch):
        monkeypatch.delenv(TRACE_BACKEND_ENV_VAR, raising=False)
        assert default_trace_backend() == "columnar"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(TRACE_BACKEND_ENV_VAR, "object")
        assert default_trace_backend() == "object"
        assert ContactTrace([]).backend == "object"

    def test_bad_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(TRACE_BACKEND_ENV_VAR, "sqlite")
        with pytest.raises(ValueError, match="sqlite"):
            default_trace_backend()

    def test_bad_explicit_backend_rejected(self):
        with pytest.raises(ValueError, match="parquet"):
            resolve_trace_backend("parquet")

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(TRACE_BACKEND_ENV_VAR, "object")
        assert ContactTrace([], backend="columnar").backend == "columnar"


class TestEquivalence:
    @given(contacts=contacts_st)
    @settings(max_examples=60, deadline=None)
    def test_same_contacts_and_metadata(self, contacts):
        obj, col = _twins(contacts)
        _assert_traces_agree(obj, col)

    @given(contacts=contacts_st)
    @settings(max_examples=60, deadline=None)
    def test_materialised_rows_are_plain_contacts(self, contacts):
        _, col = _twins(contacts)
        for contact in col:
            assert type(contact) is Contact
            assert type(contact.start) is float
            assert type(contact.duration) is float
            assert type(contact.a) is int
            assert type(contact.b) is int

    @given(
        contacts=contacts_st,
        lo=st.floats(0.0, 5_000.0, allow_nan=False),
        span=st.floats(0.0, 5_000.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_slices_agree(self, contacts, lo, span):
        obj, col = _twins(contacts)
        _assert_traces_agree(
            obj.slice(lo, lo + span), col.slice(lo, lo + span)
        )
        _assert_traces_agree(obj.first_days(span / 86_400.0),
                             col.first_days(span / 86_400.0))

    @given(
        contacts=contacts_st,
        offset=st.floats(-100.0, 100.0, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_shift_and_indexing_agree(self, contacts, offset):
        obj, col = _twins(contacts)
        _assert_traces_agree(obj.shifted(offset), col.shifted(offset))
        for i in range(-len(obj.contacts), len(obj.contacts)):
            assert obj.contacts[i] == col.contacts[i]

    @given(contacts=contacts_st, node=st.integers(0, 23))
    @settings(max_examples=60, deadline=None)
    def test_per_node_views_agree(self, contacts, node):
        obj, col = _twins(contacts)
        assert obj.contacts_of(node) == col.contacts_of(node)
        assert obj.neighbours(node) == col.neighbours(node)
        assert obj.pair_contact_counts() == col.pair_contact_counts()

    @given(contacts=contacts_st)
    @settings(max_examples=30, deadline=None)
    def test_from_arrays_matches_object_construction(self, contacts):
        ordered = sorted(contacts, key=lambda c: c.start)
        start = np.array([c.start for c in ordered])
        duration = np.array([c.duration for c in ordered])
        a = np.array([c.a for c in ordered], dtype=np.int64)
        b = np.array([c.b for c in ordered], dtype=np.int64)
        for backend in TRACE_BACKENDS:
            built = ContactTrace.from_arrays(
                start, duration, a, b, backend=backend
            )
            assert list(built) == ordered

    @given(contacts=contacts_st)
    @settings(max_examples=20, deadline=None)
    def test_simulation_reports_agree(self, contacts):
        obj, col = _twins(contacts)
        reports = [
            Simulation(trace, PassiveProtocol()).run() for trace in (obj, col)
        ]
        first, second = reports
        assert first.num_contacts == second.num_contacts
        assert first.end_time == second.end_time
        assert first.channels_exhausted == second.channels_exhausted
        assert dict(first.contacts_by_node) == dict(second.contacts_by_node)
        assert first.bytes_transferred == second.bytes_transferred
