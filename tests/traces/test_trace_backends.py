"""Property tests: the object, columnar, and mmap backends are equal.

The columnar and mmap backends are pure storage swaps — same contacts,
same order, same derived views — so after any construction and any
sequence of trace transforms all three must agree exactly.  Hypothesis
generates random contact sets and drives the backends in lockstep; a
final test replays all of them through the simulator and compares the
reports.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtn import PassiveProtocol, Simulation
from repro.traces import ContactTrace
from repro.traces.backends import (
    TRACE_BACKEND_ENV_VAR,
    TRACE_BACKENDS,
    default_trace_backend,
    resolve_trace_backend,
)
from repro.traces.model import Contact

contact_st = st.builds(
    Contact.make,
    start=st.floats(0.0, 5_000.0, allow_nan=False, allow_infinity=False),
    duration=st.floats(0.5, 600.0, allow_nan=False, allow_infinity=False),
    a=st.integers(0, 11),
    b=st.integers(12, 23),
)

contacts_st = st.lists(contact_st, min_size=0, max_size=40)


def _twins(contacts):
    """One trace per backend, in TRACE_BACKENDS order."""
    return tuple(
        ContactTrace(contacts, name="twin", backend=backend)
        for backend in TRACE_BACKENDS
    )


def _assert_traces_agree(obj, *others):
    for other in others:
        assert obj.num_contacts == other.num_contacts
        assert obj.nodes == other.nodes
        assert obj.start_time == other.start_time
        assert obj.end_time == other.end_time
        assert list(obj) == list(other)


class TestBackendSelection:
    def test_registry(self):
        assert set(TRACE_BACKENDS) == {"object", "columnar", "mmap"}

    def test_default_is_columnar(self, monkeypatch):
        monkeypatch.delenv(TRACE_BACKEND_ENV_VAR, raising=False)
        assert default_trace_backend() == "columnar"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(TRACE_BACKEND_ENV_VAR, "object")
        assert default_trace_backend() == "object"
        assert ContactTrace([]).backend == "object"

    def test_bad_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(TRACE_BACKEND_ENV_VAR, "sqlite")
        with pytest.raises(ValueError, match="sqlite"):
            default_trace_backend()

    def test_bad_explicit_backend_rejected(self):
        with pytest.raises(ValueError, match="parquet"):
            resolve_trace_backend("parquet")

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(TRACE_BACKEND_ENV_VAR, "object")
        assert ContactTrace([], backend="columnar").backend == "columnar"


class TestEquivalence:
    @given(contacts=contacts_st)
    @settings(max_examples=60, deadline=None)
    def test_same_contacts_and_metadata(self, contacts):
        obj, col, mm = _twins(contacts)
        _assert_traces_agree(obj, col, mm)

    @given(contacts=contacts_st)
    @settings(max_examples=60, deadline=None)
    def test_materialised_rows_are_plain_contacts(self, contacts):
        _, col, mm = _twins(contacts)
        for trace in (col, mm):
            for contact in trace:
                assert type(contact) is Contact
                assert type(contact.start) is float
                assert type(contact.duration) is float
                assert type(contact.a) is int
                assert type(contact.b) is int

    @given(
        contacts=contacts_st,
        lo=st.floats(0.0, 5_000.0, allow_nan=False),
        span=st.floats(0.0, 5_000.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_slices_agree(self, contacts, lo, span):
        obj, col, mm = _twins(contacts)
        _assert_traces_agree(
            obj.slice(lo, lo + span),
            col.slice(lo, lo + span),
            mm.slice(lo, lo + span),
        )
        _assert_traces_agree(obj.first_days(span / 86_400.0),
                             col.first_days(span / 86_400.0),
                             mm.first_days(span / 86_400.0))

    @given(
        contacts=contacts_st,
        offset=st.floats(-100.0, 100.0, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_shift_and_indexing_agree(self, contacts, offset):
        obj, col, mm = _twins(contacts)
        _assert_traces_agree(
            obj.shifted(offset), col.shifted(offset), mm.shifted(offset)
        )
        for i in range(-len(obj.contacts), len(obj.contacts)):
            assert obj.contacts[i] == col.contacts[i]
            assert obj.contacts[i] == mm.contacts[i]

    @given(contacts=contacts_st, node=st.integers(0, 23))
    @settings(max_examples=60, deadline=None)
    def test_per_node_views_agree(self, contacts, node):
        obj, col, mm = _twins(contacts)
        for other in (col, mm):
            assert obj.contacts_of(node) == other.contacts_of(node)
            assert obj.neighbours(node) == other.neighbours(node)
            assert obj.pair_contact_counts() == other.pair_contact_counts()

    @given(contacts=contacts_st)
    @settings(max_examples=30, deadline=None)
    def test_from_arrays_matches_object_construction(self, contacts):
        ordered = sorted(contacts, key=lambda c: c.start)
        start = np.array([c.start for c in ordered])
        duration = np.array([c.duration for c in ordered])
        a = np.array([c.a for c in ordered], dtype=np.int64)
        b = np.array([c.b for c in ordered], dtype=np.int64)
        for backend in TRACE_BACKENDS:
            built = ContactTrace.from_arrays(
                start, duration, a, b, backend=backend
            )
            assert list(built) == ordered

    @given(contacts=contacts_st)
    @settings(max_examples=20, deadline=None)
    def test_simulation_reports_agree(self, contacts):
        traces = _twins(contacts)
        reports = [
            Simulation(trace, PassiveProtocol()).run() for trace in traces
        ]
        first = reports[0]
        for second in reports[1:]:
            assert first.num_contacts == second.num_contacts
            assert first.end_time == second.end_time
            assert first.channels_exhausted == second.channels_exhausted
            assert dict(first.contacts_by_node) == dict(
                second.contacts_by_node
            )
            assert first.bytes_transferred == second.bytes_transferred


class TestBoundarySemantics:
    """slice/upto boundary rules, pinned identically for every backend.

    A contact sits in ``slice(t0, t1)`` iff ``t0 <= start < t1`` — the
    *end* of the window is exclusive and a contact whose start equals
    ``t1`` belongs to the next window, so adjacent windows partition a
    trace with no loss and no double-count.
    """

    CONTACTS = [
        Contact.make(start=0.0, duration=5.0, a=0, b=1),
        Contact.make(start=10.0, duration=5.0, a=1, b=2),
        Contact.make(start=10.0, duration=1.0, a=2, b=3),
        Contact.make(start=20.0, duration=5.0, a=3, b=4),
    ]

    @pytest.fixture(params=TRACE_BACKENDS)
    def trace(self, request):
        return ContactTrace(
            self.CONTACTS, name="boundary", backend=request.param
        )

    def test_start_boundary_inclusive(self, trace):
        window = trace.slice(10.0, 20.0)
        assert [c.start for c in window] == [10.0, 10.0]

    def test_end_boundary_exclusive(self, trace):
        assert [c.start for c in trace.slice(0.0, 10.0)] == [0.0]
        assert [c.start for c in trace.slice(0.0, 20.0)] == [0.0, 10.0, 10.0]

    def test_adjacent_windows_partition(self, trace):
        edges = [0.0, 10.0, 20.0, 30.0]
        windows = [
            trace.slice(lo, hi) for lo, hi in zip(edges, edges[1:])
        ]
        recombined = [c for w in windows for c in w]
        assert recombined == list(trace)

    def test_upto_is_exclusive(self, trace):
        upto = trace._store.upto(10.0)
        assert [c.start for c in upto] == [0.0]

    def test_empty_window(self, trace):
        assert list(trace.slice(11.0, 11.0)) == []
        assert list(trace.slice(40.0, 50.0)) == []

    def test_row_slice_clamps(self, trace):
        store = trace._store
        assert len(store.row_slice(-5, 99)) == len(store)
        assert len(store.row_slice(2, 2)) == 0
        got = [c for c in store.row_slice(1, 3)]
        assert got == self.CONTACTS[1:3]
