"""Tests for trace statistics (Table I support)."""

import math

import pytest

from repro.traces.model import ContactTrace
from repro.traces.stats import compute_stats, inter_contact_times

from ..conftest import make_trace


class TestComputeStats:
    def test_basic_counts(self, line_trace):
        stats = compute_stats(line_trace)
        assert stats.num_nodes == 4
        assert stats.num_contacts == 3
        assert stats.duration_days == pytest.approx(460.0 / 86_400.0)

    def test_mean_contact_duration(self):
        trace = make_trace([(0.0, 10.0, 0, 1), (100.0, 30.0, 1, 2)])
        stats = compute_stats(trace)
        assert stats.mean_contact_duration_s == 20.0
        assert stats.median_contact_duration_s == 20.0

    def test_degrees(self, line_trace):
        stats = compute_stats(line_trace)
        assert stats.max_degree == 2  # node 1 and node 2
        assert stats.mean_degree == pytest.approx((1 + 2 + 2 + 1) / 4)

    def test_empty_trace_gives_nans(self):
        stats = compute_stats(ContactTrace([], nodes=range(2)))
        assert math.isnan(stats.mean_contact_duration_s)
        assert math.isnan(stats.contacts_per_day)

    def test_as_table_row_has_table_i_columns(self, line_trace):
        row = compute_stats(line_trace).as_table_row()
        assert set(row) == {
            "Data Set",
            "Duration (days)",
            "Number of nodes",
            "Number of contacts",
        }


class TestInterContactTimes:
    def test_per_pair_gaps(self):
        trace = make_trace(
            [(0.0, 1.0, 0, 1), (100.0, 1.0, 0, 1), (250.0, 1.0, 0, 1)]
        )
        assert sorted(inter_contact_times(trace)) == [100.0, 150.0]

    def test_single_contact_pairs_contribute_nothing(self, line_trace):
        assert inter_contact_times(line_trace) == []

    def test_pools_over_pairs(self):
        trace = make_trace(
            [
                (0.0, 1.0, 0, 1),
                (50.0, 1.0, 0, 1),
                (0.0, 1.0, 2, 3),
                (80.0, 1.0, 2, 3),
            ]
        )
        assert sorted(inter_contact_times(trace)) == [50.0, 80.0]

    def test_stats_use_gaps(self):
        trace = make_trace([(0.0, 1.0, 0, 1), (60.0, 1.0, 0, 1)])
        stats = compute_stats(trace)
        assert stats.mean_inter_contact_s == 60.0
        assert stats.median_inter_contact_s == 60.0
