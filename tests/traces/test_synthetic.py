"""Tests for the synthetic trace generator and its calibrated presets."""

import numpy as np
import pytest

from repro.traces.synthetic import (
    CAMPUS_PROFILE,
    CONFERENCE_PROFILE,
    FLAT_PROFILE,
    DiurnalProfile,
    SyntheticTraceConfig,
    generate_trace,
    haggle_like,
    mit_reality_like,
)


def small_config(**overrides):
    defaults = dict(
        num_nodes=20,
        duration_days=1.0,
        target_contacts=800,
        num_communities=3,
        seed=5,
        name="small",
    )
    defaults.update(overrides)
    return SyntheticTraceConfig(**defaults)


class TestDiurnalProfile:
    def test_needs_24_weights(self):
        with pytest.raises(ValueError, match="24"):
            DiurnalProfile(hourly_weights=(1.0,) * 23)

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            DiurnalProfile(hourly_weights=(0.0,) * 24)

    def test_sample_times_in_range(self):
        rng = np.random.default_rng(0)
        times = CONFERENCE_PROFILE.sample_times(500, 86_400.0, rng)
        assert len(times) == 500
        assert (times >= 0).all() and (times < 86_400.0).all()

    def test_conference_profile_concentrates_daytime(self):
        rng = np.random.default_rng(0)
        times = CONFERENCE_PROFILE.sample_times(4000, 86_400.0, rng)
        hours = (times // 3600) % 24
        daytime = ((hours >= 9) & (hours < 18)).mean()
        assert daytime > 0.6

    def test_flat_profile_is_roughly_uniform(self):
        rng = np.random.default_rng(0)
        times = FLAT_PROFILE.sample_times(6000, 86_400.0, rng)
        hours = (times // 3600) % 24
        counts = np.bincount(hours.astype(int), minlength=24)
        assert counts.min() > 0.5 * counts.mean()

    def test_zero_count(self):
        rng = np.random.default_rng(0)
        assert len(FLAT_PROFILE.sample_times(0, 1000.0, rng)) == 0

    def test_partial_day_duration(self):
        rng = np.random.default_rng(0)
        times = CAMPUS_PROFILE.sample_times(200, 10_000.0, rng)
        assert (times < 10_000.0).all()


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = generate_trace(small_config())
        b = generate_trace(small_config())
        assert a.num_contacts == b.num_contacts
        assert [c.pair for c in a] == [c.pair for c in b]
        assert [c.start for c in a] == [c.start for c in b]

    def test_different_seeds_differ(self):
        a = generate_trace(small_config(seed=1))
        b = generate_trace(small_config(seed=2))
        assert [c.start for c in a] != [c.start for c in b]

    def test_contact_count_near_target(self):
        trace = generate_trace(small_config(target_contacts=2000))
        # Poisson totals plus overlap-merging: within 15 % of target.
        assert 0.85 * 2000 <= trace.num_contacts <= 1.1 * 2000

    def test_population_includes_isolated_nodes(self):
        trace = generate_trace(small_config(target_contacts=20))
        assert trace.num_nodes == 20

    def test_durations_respect_floor(self):
        config = small_config(min_contact_duration_s=30.0)
        trace = generate_trace(config)
        assert all(c.duration >= 30.0 for c in trace)

    def test_no_overlapping_contacts_per_pair(self):
        trace = generate_trace(small_config(target_contacts=3000))
        by_pair = {}
        for c in trace:
            by_pair.setdefault(c.pair, []).append(c)
        for contacts in by_pair.values():
            contacts.sort(key=lambda c: c.start)
            for earlier, later in zip(contacts, contacts[1:]):
                assert later.start > earlier.end

    def test_zero_target_gives_empty_trace(self):
        trace = generate_trace(small_config(target_contacts=0))
        assert trace.num_contacts == 0
        assert trace.num_nodes == 20

    def test_heterogeneous_activity_creates_hubs(self):
        """Lognormal activity should give a wide degree spread."""
        trace = generate_trace(
            small_config(num_nodes=40, target_contacts=3000, activity_sigma=0.8)
        )
        meetings = {n: 0 for n in trace.nodes}
        for c in trace:
            meetings[c.a] += 1
            meetings[c.b] += 1
        values = sorted(meetings.values())
        assert values[-1] > 3 * max(1, values[len(values) // 10])

    def test_community_boost_concentrates_contacts(self):
        config = small_config(
            num_nodes=30,
            target_contacts=4000,
            num_communities=3,
            intra_community_boost=8.0,
            activity_sigma=0.0,
        )
        rng = np.random.default_rng(config.seed)
        communities = rng.integers(0, config.num_communities, size=config.num_nodes)
        trace = generate_trace(config)
        intra = sum(1 for c in trace if communities[c.a] == communities[c.b])
        # ~1/3 of pairs are intra-community; with boost 8 they should
        # carry well over half the contacts.
        assert intra / trace.num_contacts > 0.5

    def test_config_validation(self):
        with pytest.raises(ValueError):
            small_config(num_nodes=1)
        with pytest.raises(ValueError):
            small_config(duration_days=0)
        with pytest.raises(ValueError):
            small_config(intra_community_boost=0.5)
        with pytest.raises(ValueError):
            small_config(target_contacts=-1)


class TestPresets:
    def test_haggle_like_matches_table_i(self):
        trace = haggle_like(scale=0.1, seed=0)
        assert trace.num_nodes == 79
        assert trace.duration_days <= 3.01
        assert 0.8 * 6736 <= trace.num_contacts <= 1.1 * 6736

    def test_mit_like_matches_population(self):
        trace = mit_reality_like(scale=0.1, seed=0)
        assert trace.num_nodes == 97
        assert trace.duration_days <= 3.01

    def test_mit_sparser_than_haggle(self):
        """The paper's cross-trace observation: MIT has lower contact
        frequency; our presets preserve it at every scale."""
        haggle = haggle_like(scale=0.1)
        mit = mit_reality_like(scale=0.1)
        haggle_rate = haggle.num_contacts / haggle.num_nodes
        mit_rate = mit.num_contacts / mit.num_nodes
        assert mit_rate < 0.5 * haggle_rate

    def test_scale_parameter(self):
        small = haggle_like(scale=0.05)
        big = haggle_like(scale=0.1)
        assert 1.6 < big.num_contacts / small.num_contacts < 2.4

    def test_preset_names(self):
        assert "haggle" in haggle_like(scale=0.02).name
        assert "mit" in mit_reality_like(scale=0.02).name
