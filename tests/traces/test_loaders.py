"""Tests for the real-trace loaders."""

import pytest

from repro.traces.loaders import (
    NodeRelabeller,
    load_csv_trace,
    load_whitespace_trace,
)


class TestNodeRelabeller:
    def test_dense_ids_in_first_seen_order(self):
        relabel = NodeRelabeller()
        assert relabel["aa:bb"] == 0
        assert relabel["cc:dd"] == 1
        assert relabel["aa:bb"] == 0
        assert len(relabel) == 2

    def test_strips_whitespace(self):
        relabel = NodeRelabeller()
        assert relabel[" node1 "] == relabel["node1"]

    def test_mapping_snapshot(self):
        relabel = NodeRelabeller()
        relabel["x"]
        assert relabel.mapping == {"x": 0}


class TestCsvLoader:
    def test_basic_load(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("n1,n2,100,160\nn2,n3,200,230\n")
        trace = load_csv_trace(path)
        assert trace.num_contacts == 2
        assert trace.num_nodes == 3
        assert trace.contacts[0].duration == 60.0

    def test_header_skipped(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("a,b,start,end\nn1,n2,0,10\n")
        assert load_csv_trace(path).num_contacts == 1

    def test_zero_length_sighting_gets_nominal_duration(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("n1,n2,100,100\n")
        trace = load_csv_trace(path)
        assert trace.contacts[0].duration == 1.0

    def test_wrong_field_count_raises(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("n1,n2,100\n")
        with pytest.raises(ValueError, match="4 fields"):
            load_csv_trace(path)

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "infocom06.csv"
        path.write_text("n1,n2,0,10\n")
        assert load_csv_trace(path).name == "infocom06"

    def test_explicit_name(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("n1,n2,0,10\n")
        assert load_csv_trace(path, name="haggle").name == "haggle"


class TestWhitespaceLoader:
    def test_basic_load(self, tmp_path):
        path = tmp_path / "reality.txt"
        path.write_text("# comment\n\nA B 0 60\nB C 120 130\n")
        trace = load_whitespace_trace(path)
        assert trace.num_contacts == 2
        assert trace.num_nodes == 3

    def test_times_sorted(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("A B 500 510\nA C 100 110\n")
        trace = load_whitespace_trace(path)
        assert trace.contacts[0].start == 100.0

    def test_roundtrips_into_simulation(self, tmp_path):
        """A loaded trace plugs straight into the experiment runner."""
        from repro.experiments import ExperimentConfig, run_experiment

        path = tmp_path / "t.txt"
        lines = [f"A B {i * 100} {i * 100 + 50}" for i in range(20)]
        lines += [f"B C {i * 100 + 60} {i * 100 + 90}" for i in range(20)]
        path.write_text("\n".join(lines))
        trace = load_whitespace_trace(path)
        result = run_experiment(trace, "PUSH", ExperimentConfig(ttl_min=60))
        assert result.summary.num_messages >= 0  # ran to completion
