"""StateShardStore: durable per-node subscription records on disk."""

import json
import os

import pytest

from repro.serve import StateShardStore, SubscriptionRecord
from repro.serve.state_shard import DEFAULT_NUM_SHARDS


class TestShardLayout:
    def test_shard_of_is_node_id_mod_num_shards(self, tmp_path):
        store = StateShardStore(str(tmp_path), num_shards=8)
        assert store.shard_of(0) == 0
        assert store.shard_of(7) == 7
        assert store.shard_of(8) == 0
        assert store.shard_of(8_000_001) == 8_000_001 % 8

    def test_default_shard_count(self, tmp_path):
        store = StateShardStore(str(tmp_path))
        assert store.num_shards == DEFAULT_NUM_SHARDS

    def test_records_land_in_their_shard_directory(self, tmp_path):
        store = StateShardStore(str(tmp_path), num_shards=4)
        store.save(6, {"k"}, 1.0)
        expected = tmp_path / "shard_02" / "node_6.json"
        assert expected.exists()

    def test_invalid_shard_count_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            StateShardStore(str(tmp_path), num_shards=0)


class TestRoundTrip:
    def test_save_then_load(self, tmp_path):
        store = StateShardStore(str(tmp_path), num_shards=4)
        store.save(42, {"b", "a"}, 12.5)
        record = store.load(42)
        assert record == SubscriptionRecord(
            node_id=42, keys=("a", "b"), updated_at=12.5
        )

    def test_keys_stored_sorted_for_determinism(self, tmp_path):
        store = StateShardStore(str(tmp_path), num_shards=4)
        store.save(1, {"z", "m", "a"}, 0.0)
        assert store.load(1).keys == ("a", "m", "z")

    def test_save_overwrites_latest_wins(self, tmp_path):
        store = StateShardStore(str(tmp_path), num_shards=4)
        store.save(7, {"old"}, 1.0)
        store.save(7, {"new"}, 2.0)
        record = store.load(7)
        assert record.keys == ("new",)
        assert record.updated_at == 2.0

    def test_load_missing_returns_none(self, tmp_path):
        store = StateShardStore(str(tmp_path), num_shards=4)
        assert store.load(999) is None

    def test_delete_removes_record(self, tmp_path):
        store = StateShardStore(str(tmp_path), num_shards=4)
        store.save(3, {"k"}, 1.0)
        store.delete(3)
        assert store.load(3) is None
        store.delete(3)  # idempotent

    def test_len_counts_records(self, tmp_path):
        store = StateShardStore(str(tmp_path), num_shards=4)
        assert len(store) == 0
        for node in range(5):
            store.save(node, {"k"}, 0.0)
        assert len(store) == 5


class TestRobustness:
    def test_corrupt_record_treated_as_absent(self, tmp_path):
        store = StateShardStore(str(tmp_path), num_shards=4)
        store.save(5, {"k"}, 1.0)
        path = store._record_path(5)
        with open(path, "w") as fh:
            fh.write("{not json")
        assert store.load(5) is None

    def test_load_all_skips_corrupt_and_sorts_by_node(self, tmp_path):
        store = StateShardStore(str(tmp_path), num_shards=4)
        for node in (9, 2, 17):
            store.save(node, {f"k{node}"}, float(node))
        with open(store._record_path(9), "w") as fh:
            fh.write("")
        records = list(store.load_all())
        assert [r.node_id for r in records] == [2, 17]

    def test_no_tmp_files_left_behind(self, tmp_path):
        store = StateShardStore(str(tmp_path), num_shards=4)
        for node in range(10):
            store.save(node, {"k"}, 0.0)
        leftovers = [
            name
            for _root, _dirs, files in os.walk(tmp_path)
            for name in files
            if ".tmp." in name
        ]
        assert leftovers == []

    def test_record_file_is_valid_json(self, tmp_path):
        store = StateShardStore(str(tmp_path), num_shards=4)
        store.save(11, {"x"}, 3.0)
        with open(store._record_path(11)) as fh:
            doc = json.load(fh)
        assert doc["node"] == 11
        assert doc["keys"] == ["x"]

    def test_two_stores_same_root_interoperate(self, tmp_path):
        writer = StateShardStore(str(tmp_path), num_shards=4)
        reader = StateShardStore(str(tmp_path), num_shards=4)
        writer.save(8, {"shared"}, 5.0)
        assert reader.load(8).keys == ("shared",)


class TestCorruptAccounting:
    """Corrupt records are absent-but-visible: counted and logged."""

    def make_store(self, tmp_path):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        return StateShardStore(
            str(tmp_path), num_shards=4, registry=registry
        ), registry

    def corrupt(self, store, node):
        store.save(node, {"k"}, 1.0)
        with open(store._record_path(node), "w") as fh:
            fh.write("{not json")

    def test_load_bumps_counter_and_warns(self, tmp_path, caplog):
        store, registry = self.make_store(tmp_path)
        self.corrupt(store, 5)
        with caplog.at_level("WARNING", logger="repro.serve.state_shard"):
            assert store.load(5) is None
        assert store.corrupt_records == 1
        assert registry.counter("state_shard_corrupt_records").value == 1
        assert any(
            "corrupt" in record.message and "resubscribe" in record.message
            for record in caplog.records
        )

    def test_load_all_counts_every_corrupt_record(self, tmp_path):
        store, registry = self.make_store(tmp_path)
        for node in range(6):
            store.save(node, {"k"}, 0.0)
        for node in (1, 3):
            self.corrupt(store, node)
        records = list(store.load_all())
        assert [r.node_id for r in records] == [0, 2, 4, 5]
        assert store.corrupt_records == 2
        assert registry.counter("state_shard_corrupt_records").value == 2

    def test_wrong_shape_json_counts_as_corrupt(self, tmp_path):
        # Valid JSON, missing required fields: still recovery data loss.
        store, registry = self.make_store(tmp_path)
        store.save(2, {"k"}, 1.0)
        with open(store._record_path(2), "w") as fh:
            fh.write(json.dumps({"unexpected": True}))
        assert store.load(2) is None
        assert registry.counter("state_shard_corrupt_records").value == 1

    def test_clean_reads_leave_counter_untouched(self, tmp_path):
        store, registry = self.make_store(tmp_path)
        store.save(7, {"k"}, 1.0)
        assert store.load(7) is not None
        assert store.load(999) is None  # missing != corrupt
        assert store.corrupt_records == 0
        assert registry.counter("state_shard_corrupt_records").value == 0

    def test_no_registry_still_counts_locally(self, tmp_path):
        store = StateShardStore(str(tmp_path), num_shards=4)
        self.corrupt(store, 3)
        assert store.load(3) is None
        assert store.corrupt_records == 1
