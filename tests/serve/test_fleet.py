"""Multi-worker fleet: core fleet hooks, parity, supervision, drain.

The process-level tests spawn real worker processes (multiprocessing
``spawn`` + SO_REUSEPORT), so they keep session counts and durations
small; the core-level tests exercise the same fleet semantics —
message-id striping, peer-op replication, cross-worker latest-wins —
entirely in-process on :class:`BrokerCore`.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.hashing import HashFamily
from repro.obs.analyze import analyze_trace
from repro.obs.recorder import TraceRecorder
from repro.pubsub.wire import (
    Hello,
    MessageBundle,
    StreamDecoder,
    Subscribe,
    encode_frame,
)
from repro.serve import (
    BrokerCore,
    BrokerFleet,
    LoadDriver,
    LoadSpec,
    ServeSpec,
    StateShardStore,
    sum_parity,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

PARITY_KEYS = (
    "messages_created",
    "intended_pairs",
    "forwards_direct",
    "deliveries_total",
    "deliveries_intended",
    "deliveries_false",
)


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_core(worker_index=0, num_workers=1, state_store=None, spec=None):
    return BrokerCore(
        spec or ServeSpec(),
        recorder=TraceRecorder(),
        clock=Clock(),
        worker_index=worker_index,
        num_workers=num_workers,
        state_store=state_store,
    )


def connect_node(core, session_id, node_id):
    core.connect(session_id, f"127.0.0.1:{40000 + session_id}")
    return core.handle_frame(
        session_id, Hello(node_id=node_id, is_broker=False, degree=0, time=0.0)
    )


class TestMessageIdStriping:
    def test_worker_ids_stripe_without_collision(self):
        a = make_core(worker_index=0, num_workers=3)
        b = make_core(worker_index=1, num_workers=3)
        assert [a._next_msg_id() for _ in range(3)] == [0, 3, 6]
        assert [b._next_msg_id() for _ in range(3)] == [1, 4, 7]

    def test_single_worker_keeps_historical_sequence(self):
        core = make_core()
        assert [core._next_msg_id() for _ in range(4)] == [0, 1, 2, 3]

    def test_worker_index_must_be_in_range(self):
        with pytest.raises(ValueError):
            make_core(worker_index=2, num_workers=2)


class TestPeerReplication:
    def test_subscribe_casts_to_peers_and_persists(self, tmp_path):
        store = StateShardStore(str(tmp_path), num_shards=4)
        core = make_core(num_workers=2, state_store=store)
        connect_node(core, 1, 5)
        result = core.handle_frame(1, Subscribe(frozenset({"beta", "alpha"})))
        casts = [op for op in result.peer_casts if op["op"] == "sub"]
        assert casts == [{"op": "sub", "node": 5, "keys": ["alpha", "beta"]}]
        assert store.load(5).keys == ("alpha", "beta")

    def test_hello_casts_claim(self):
        core = make_core(num_workers=2)
        result = connect_node(core, 1, 5)
        assert {"op": "claim", "node": 5} in result.peer_casts

    def test_single_worker_never_casts(self):
        core = make_core()
        connect_node(core, 1, 5)
        result = core.handle_frame(1, Subscribe(frozenset({"k"})))
        assert result.peer_casts == []

    def test_peer_sub_counts_node_as_intended_not_delivered(self):
        # Worker B learns node 5's interests from a peer cast; node 5's
        # session lives elsewhere, so a local publish counts it as an
        # intended recipient but emits no local delivery.
        b = make_core(worker_index=1, num_workers=2)
        b.apply_peer_op({"op": "sub", "node": 5, "keys": ["k"]})
        connect_node(b, 1, 7)  # publisher, not subscribed
        from repro.pubsub.messages import Message

        message = Message.create(
            keys=frozenset({"k"}), source=7, created_at=0.0,
            ttl_s=600.0, size_bytes=1,
        )
        result = b.handle_frame(1, MessageBundle((message,), (b"x",)))
        assert result.outbound == []
        parity = b.parity_counters()
        assert parity["intended_pairs"] == 1
        assert parity["deliveries_total"] == 0

    def test_peer_claim_supersedes_local_session(self):
        core = make_core(num_workers=2)
        connect_node(core, 1, 5)
        result = core.apply_peer_op({"op": "claim", "node": 5})
        assert (1, "superseded") in result.close

    def test_peer_pub_delivers_to_local_intended_session(self):
        b = make_core(worker_index=1, num_workers=2)
        connect_node(b, 1, 3)
        b.handle_frame(1, Subscribe(frozenset({"k"})))
        import base64

        result = b.apply_peer_op({
            "op": "pub", "msg": 8, "publisher": 7, "keys": ["k"],
            "created_at": 0.0, "ttl_s": 600.0, "size_bytes": 2,
            "intended": [3],
            "payload": base64.b64encode(b"hi").decode("ascii"),
        })
        deliveries = [
            frame for _sid, frame in result.outbound
            if isinstance(frame, MessageBundle)
        ]
        assert len(deliveries) == 1
        assert deliveries[0].payloads == (b"hi",)
        parity = b.parity_counters()
        # The origin worker counted creation + intended; the delivering
        # worker counts only its own forwards/deliveries.
        assert parity["messages_created"] == 0
        assert parity["intended_pairs"] == 0
        assert parity["deliveries_total"] == 1
        assert parity["deliveries_intended"] == 1

    def test_unknown_peer_op_is_protocol_error(self):
        from repro.serve import ProtocolError

        core = make_core(num_workers=2)
        with pytest.raises(ProtocolError):
            core.apply_peer_op({"op": "warp", "node": 1})


class TestPeerMeshTransport:
    def test_oversized_op_survives_the_link(self):
        """A city-scale pub op (hundreds of KB of JSON on one line)
        must not kill the mesh link: asyncio's default 64 KiB readline
        limit would raise LimitOverrunError and drop the peer."""
        from repro.serve.supervisor import _PeerMesh

        async def main():
            received = asyncio.Queue()

            async def on_op(op):
                await received.put(op)

            async def ignore(_op):
                pass

            a = _PeerMesh(0, "127.0.0.1", ignore)
            b = _PeerMesh(1, "127.0.0.1", on_op)
            port_a = await a.listen()
            port_b = await b.listen()
            a.set_peers([None, port_b])
            b.set_peers([port_a, None])
            a.broadcast({"op": "pub", "intended": list(range(40_000))})
            op = await asyncio.wait_for(received.get(), timeout=10)
            await a.close()
            await b.close()
            return op

        op = asyncio.run(main())
        assert op["op"] == "pub"
        assert len(op["intended"]) == 40_000


class TestParitySummation:
    def test_sum_parity_adds_counterwise(self):
        a = {key: 1 for key in PARITY_KEYS}
        b = {key: 2 for key in PARITY_KEYS}
        total = sum_parity([a, b])
        assert total == {key: 3 for key in PARITY_KEYS}
        assert sum_parity([]) == {key: 0 for key in PARITY_KEYS}


class FleetClient:
    """Minimal socket client against a running fleet."""

    def __init__(self, port, spec=None):
        spec = spec or ServeSpec()
        self.port = port
        self.decoder = StreamDecoder(
            HashFamily(num_hashes=spec.num_hashes, num_bits=spec.num_bits),
            spec.initial_value,
        )
        self.reader = None
        self.writer = None
        self._queued = []

    async def connect(self, node_id):
        self.reader, self.writer = await asyncio.open_connection(
            "127.0.0.1", self.port
        )
        await self.send(Hello(node_id, False, 0, 0.0))
        reply = await self.recv()
        assert reply.is_broker
        return self

    async def send(self, frame):
        self.writer.write(encode_frame(frame))
        await self.writer.drain()

    async def recv(self, timeout=5.0):
        deadline = asyncio.get_running_loop().time() + timeout
        while True:
            if self._queued:
                return self._queued.pop(0)
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise TimeoutError("no frame within timeout")
            chunk = await asyncio.wait_for(
                self.reader.read(4096), timeout=remaining
            )
            if not chunk:
                raise ConnectionError("broker closed the stream")
            self._queued.extend(self.decoder.feed(chunk).frames)

    async def drain_deliveries(self, window_s=1.0):
        """All MessageBundle frames arriving within *window_s*."""
        bundles = []
        loop = asyncio.get_running_loop()
        deadline = loop.time() + window_s
        while True:
            remaining = deadline - loop.time()
            if remaining <= 0:
                return bundles
            try:
                frame = await self.recv(timeout=remaining)
            except (TimeoutError, asyncio.TimeoutError):
                return bundles
            if isinstance(frame, MessageBundle):
                bundles.append(frame)

    async def close(self):
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass


def publish_frame(msg_id_source, keys, payload=b"x"):
    from repro.pubsub.messages import Message

    message = Message.create(
        keys=frozenset(keys), source=msg_id_source, created_at=0.0,
        ttl_s=600.0, size_bytes=len(payload),
    )
    return MessageBundle((message,), (payload,))


class TestFleetEndToEnd:
    def test_merged_trace_matches_summed_parity(self, tmp_path):
        trace = tmp_path / "trace.jsonl"

        async def main():
            spec = ServeSpec(
                port=0, workers=2, trace_path=str(trace), idle_timeout_s=60.0
            )
            fleet = BrokerFleet(spec)
            await fleet.start()
            assert len(set(fleet.worker_pids)) == 2
            load = LoadSpec(
                port=fleet.port, sessions=30, publisher_fraction=0.25,
                duration_s=2.0, publish_rate_per_s=2.0,
                interests_per_node=2, seed=13,
            )
            report = await LoadDriver(load).run()
            assert report.sessions_connected == 30
            assert report.decode_errors == 0
            summary = await fleet.stop()
            return report, summary

        report, summary = asyncio.run(main())
        assert summary["workers"] == 2
        assert summary["restarts"] == 0
        per_worker_msgs = [
            w["summary"]["messages"] for w in summary["per_worker"]
        ]
        assert sum(per_worker_msgs) == report.messages_published

        analysis = analyze_trace(str(trace))
        got = {
            "messages_created": analysis.messages["created"],
            "intended_pairs": analysis.messages["intended_pairs"],
            "forwards_direct": analysis.forwards["direct"],
            "deliveries_total": analysis.deliveries["total"],
            "deliveries_intended": analysis.deliveries["intended"],
            "deliveries_false": analysis.deliveries["false"],
        }
        assert got == summary["parity"]
        assert report.deliveries_received == got["deliveries_total"]


class TestFleetSupervision:
    def test_killed_worker_restarts_and_sessions_reconnect(self, tmp_path):
        async def main():
            spec = ServeSpec(
                port=0, workers=2, idle_timeout_s=60.0,
                state_dir=str(tmp_path / "state"),
            )
            fleet = BrokerFleet(spec)
            await fleet.start()
            try:
                sub = await FleetClient(fleet.port, spec).connect(1)
                await sub.send(Subscribe(frozenset({"alpha"})))
                await asyncio.sleep(0.3)  # let the sub cast replicate
                pub = await FleetClient(fleet.port, spec).connect(2)
                await pub.send(publish_frame(2, {"alpha"}, b"one"))
                first = await sub.drain_deliveries(window_s=1.5)
                assert len(first) == 1

                victim = fleet.worker_pids[1]
                os.kill(victim, signal.SIGKILL)
                deadline = asyncio.get_running_loop().time() + 20.0
                while True:
                    pids = fleet.worker_pids
                    if len(pids) == 2 and pids[1] != victim:
                        break
                    if asyncio.get_running_loop().time() > deadline:
                        raise AssertionError("worker was not restarted")
                    await asyncio.sleep(0.2)
                await asyncio.sleep(0.5)  # replacement finishes wiring

                # Both clients reconnect (their worker may have died);
                # the subscriber does NOT resubscribe — its interest
                # set must come back from the durable shard store.
                await sub.close()
                await pub.close()
                sub2 = await FleetClient(fleet.port, spec).connect(1)
                await asyncio.sleep(0.5)  # claim casts settle
                pub2 = await FleetClient(fleet.port, spec).connect(2)
                await pub2.send(publish_frame(2, {"alpha"}, b"two"))
                second = await sub2.drain_deliveries(window_s=2.0)
                assert len(second) == 1, (
                    f"expected exactly one delivery, got {len(second)}"
                )
                assert second[0].payloads == (b"two",)
                await sub2.close()
                await pub2.close()
            finally:
                summary = await fleet.stop()
            return summary

        summary = asyncio.run(main())
        assert summary["restarts"] == 1

    def test_sigterm_drains_fleet_and_merges_trace(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--spec", "port=0,idle_timeout_s=60",
                "--workers", "2",
                "--trace-out", str(trace),
                "--json",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            cwd=str(REPO_ROOT),
        )
        try:
            shards = [Path(f"{trace}.w0"), Path(f"{trace}.w1")]
            deadline = time.monotonic() + 30.0
            while not all(p.exists() for p in shards):
                assert proc.poll() is None, "fleet exited before startup"
                assert time.monotonic() < deadline, "fleet never started"
                time.sleep(0.2)
            time.sleep(0.5)
            proc.send_signal(signal.SIGTERM)
            stdout, _ = proc.communicate(timeout=45)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        summary = json.loads(stdout.decode().strip().splitlines()[-1])
        assert summary["workers"] == 2
        assert summary["parity"].keys() == set(PARITY_KEYS)
        assert trace.exists()
        analysis = analyze_trace(str(trace))
        assert analysis.messages["created"] == summary["parity"][
            "messages_created"
        ]
