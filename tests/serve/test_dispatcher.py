"""BrokerCore: the protocol engine, exercised without any sockets.

Everything here drives connect / handle_frame / disconnect directly
with an injected clock and an in-memory recorder, asserting on
outbound frames, durable state, trace events, and registry counters.
"""

import pytest

from repro.faults.spec import FaultSpec
from repro.obs.recorder import TraceRecorder
from repro.pubsub.messages import Message
from repro.pubsub.wire import (
    FilterRequest,
    Hello,
    InterestAnnouncement,
    MessageBundle,
    RelayFilter,
    Subscribe,
)
from repro.core.tcbf import TemporalCountingBloomFilter
from repro.serve.dispatcher import BrokerCore, ProtocolError
from repro.serve.session import BROKER_NODE_ID
from repro.serve.spec import ServeSpec


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_core(spec=None, recorder=None, clock=None):
    return BrokerCore(
        spec or ServeSpec(),
        recorder=recorder if recorder is not None else TraceRecorder(),
        clock=clock or Clock(),
    )


def connect_node(core, session_id, node_id):
    core.connect(session_id, f"127.0.0.1:{40000 + session_id}")
    return core.handle_frame(
        session_id, Hello(node_id=node_id, is_broker=False, degree=0, time=0.0)
    )


def publish(core, session_id, keys, payload=b"x", **kwargs):
    message = Message.create(
        keys=frozenset(keys), source=kwargs.pop("source", 0) or 99,
        created_at=kwargs.pop("created_at", 0.0),
        ttl_s=kwargs.pop("ttl_s", 600.0), size_bytes=len(payload),
    )
    return core.handle_frame(session_id, MessageBundle((message,), (payload,)))


class TestSessionLifecycle:
    def test_hello_identifies_and_gets_broker_hello(self):
        core = make_core()
        result = connect_node(core, 1, 5)
        (target, reply), = result.outbound
        assert target == 1
        assert reply == Hello(node_id=BROKER_NODE_ID, is_broker=True,
                              degree=1, time=0.0)
        assert core.sessions[1].ctx.node_id == 5

    def test_frames_before_hello_are_protocol_errors(self):
        core = make_core()
        core.connect(1, "p")
        with pytest.raises(ProtocolError, match="Hello"):
            core.handle_frame(1, Subscribe(("a",)))

    def test_node_id_zero_is_reserved_for_the_broker(self):
        core = make_core()
        core.connect(1, "p")
        with pytest.raises(ProtocolError, match="broker"):
            core.handle_frame(1, Hello(0, False, 0, 0.0))

    def test_rebinding_node_id_rejected(self):
        core = make_core()
        connect_node(core, 1, 5)
        with pytest.raises(ProtocolError, match="rebind"):
            core.handle_frame(1, Hello(6, False, 0, 0.0))

    def test_repeated_hello_is_keepalive(self):
        clock = Clock()
        core = make_core(clock=clock)
        connect_node(core, 1, 5)
        clock.now = 42.0
        core.handle_frame(1, Hello(5, False, 0, 0.0))
        assert core.sessions[1].ctx.hello_at == 42.0

    def test_reconnect_supersedes_stale_session(self):
        core = make_core()
        connect_node(core, 1, 5)
        result = connect_node(core, 2, 5)
        assert result.close == [(1, "superseded")]
        assert core.node_sessions[5] == 2

    def test_max_sessions_refuses_connections(self):
        core = make_core(spec=ServeSpec(max_sessions=1))
        core.connect(1, "a")
        with pytest.raises(ProtocolError, match="limit"):
            core.connect(2, "b")
        assert core.registry.counter("serve_sessions_refused_total").value == 1

    def test_disconnect_emits_contact_and_keeps_durable_state(self):
        clock = Clock()
        recorder = TraceRecorder()
        core = make_core(recorder=recorder, clock=clock)
        connect_node(core, 1, 5)
        core.handle_frame(1, Subscribe(("sports",)))
        clock.now = 7.5
        core.disconnect(1, reason="eof")
        (contact,) = recorder.events_of("contact")
        assert contact.fields["a"] == 5
        assert contact.fields["b"] == BROKER_NODE_ID
        assert contact.fields["duration"] == 7.5
        assert core.subscriptions[5] == frozenset({"sports"})
        assert 5 not in core.node_sessions


class TestSubscriptions:
    def test_subscribe_replaces_whole_key_set(self):
        core = make_core()
        connect_node(core, 1, 5)
        core.handle_frame(1, Subscribe(("a", "b")))
        core.handle_frame(1, Subscribe(("b", "c")))
        assert core.subscriptions[5] == frozenset({"b", "c"})
        assert 5 in core._key_index["c"]
        assert "a" not in core._key_index

    def test_subscribe_a_merges_into_broker_relay(self):
        recorder = TraceRecorder()
        core = make_core(recorder=recorder)
        connect_node(core, 1, 5)
        core.handle_frame(1, Subscribe(("sports",)))
        assert "sports" in core.broker_state.relay
        (merge,) = recorder.events_of("a_merge")
        assert merge.fields["src"] == 5
        assert merge.fields["num_keys"] == 1
        assert merge.fields["min_key_counter_after"] > 0

    def test_durable_resubscription_after_reconnect(self):
        core = make_core()
        connect_node(core, 1, 5)
        core.handle_frame(1, Subscribe(("sports",)))
        core.disconnect(1)
        # No deliveries while offline...
        connect_node(core, 2, 9)
        result = publish(core, 2, ["sports"], source=9)
        assert result.outbound == []
        # ...but the sub survives: reconnect and deliveries resume
        # without resubscribing.
        connect_node(core, 3, 5)
        result = publish(core, 2, ["sports"], source=9)
        assert [t for t, _ in result.outbound] == [3]


class TestPublishMatching:
    def test_exact_matching_routes_by_key_index(self):
        core = make_core()
        connect_node(core, 1, 1)
        connect_node(core, 2, 2)
        connect_node(core, 3, 3)
        core.handle_frame(1, Subscribe(("sports",)))
        core.handle_frame(2, Subscribe(("news",)))
        result = publish(core, 3, ["sports"], source=3)
        assert [t for t, _ in result.outbound] == [1]
        (_, bundle), = result.outbound
        assert isinstance(bundle, MessageBundle)
        assert bundle.payloads == (b"x",)

    def test_publisher_never_delivered_to_itself(self):
        core = make_core()
        connect_node(core, 1, 1)
        core.handle_frame(1, Subscribe(("sports",)))
        result = publish(core, 1, ["sports"], source=1)
        assert result.outbound == []

    def test_bloom_matching_uses_genuine_bloom(self):
        core = make_core(spec=ServeSpec(matching="bloom"))
        connect_node(core, 1, 1)
        connect_node(core, 2, 2)
        core.handle_frame(1, Subscribe(("sports",)))
        result = publish(core, 2, ["sports"], source=2)
        assert [t for t, _ in result.outbound] == [1]

    def test_trace_events_have_analyzer_field_names(self):
        recorder = TraceRecorder()
        core = make_core(recorder=recorder)
        connect_node(core, 1, 1)
        connect_node(core, 2, 2)
        core.handle_frame(1, Subscribe(("sports",)))
        publish(core, 2, ["sports"], source=2)
        (create,) = recorder.events_of("create")
        assert create.fields["num_intended"] == 1
        assert create.fields["node"] == 2
        (forward,) = recorder.events_of("forward")
        assert forward.fields["kind"] == "direct"
        assert (forward.fields["src"], forward.fields["dst"]) == (2, 1)
        (delivery,) = recorder.events_of("delivery")
        assert delivery.fields["intended"] is True
        assert delivery.fields["cause"] == "direct"

    def test_intended_counts_offline_durable_subscribers(self):
        core = make_core()
        connect_node(core, 1, 1)
        core.handle_frame(1, Subscribe(("sports",)))
        core.disconnect(1)
        connect_node(core, 2, 2)
        publish(core, 2, ["sports"], source=2)
        parity = core.parity_counters()
        assert parity["intended_pairs"] == 1
        assert parity["deliveries_total"] == 0


class TestContactLayerFrames:
    def test_interest_announcement_merges(self):
        core = make_core()
        connect_node(core, 1, 1)
        tcbf = TemporalCountingBloomFilter(
            family=core.family, initial_value=50.0, decay_factor=0.0
        )
        tcbf.insert("H1N1")
        core.handle_frame(1, InterestAnnouncement(tcbf))
        assert "H1N1" in core.broker_state.relay
        assert core.registry.counter("serve_a_merges_total").value == 1

    def test_relay_filter_m_merges(self):
        core = make_core()
        connect_node(core, 1, 1)
        tcbf = TemporalCountingBloomFilter(
            family=core.family, initial_value=50.0, decay_factor=0.0
        )
        tcbf.insert("NewMoon")
        core.handle_frame(1, RelayFilter(tcbf))
        assert "NewMoon" in core.broker_state.relay
        assert core.registry.counter("serve_m_merges_total").value == 1

    def test_filter_request_is_acknowledged(self):
        from repro.core.bloom import BloomFilter

        core = make_core()
        connect_node(core, 1, 1)
        probe = BloomFilter(family=core.family)
        probe.insert("sports")
        result = core.handle_frame(1, FilterRequest(probe))
        (target, reply), = result.outbound
        assert target == 1 and reply.is_broker


class TestFaultsAndShutdown:
    def test_inbound_faults_drop_deterministically(self):
        spec = ServeSpec(faults=FaultSpec(frame_loss=1.0, seed=3))
        recorder = TraceRecorder()
        core = make_core(spec=spec, recorder=recorder)
        connect_node(core, 1, 1)  # Hello passes: faults drop post-identify
        result = core.handle_frame(1, Subscribe(("sports",)))
        # frame_loss=1.0 drops every frame after accounting.
        assert result.outbound == [] and 1 not in core.subscriptions
        assert core.registry.counter("serve_faults_dropped_total").value >= 1
        assert recorder.events_of("frame_dropped")

    def test_shutdown_closes_sessions_and_emits_sim_end(self):
        clock = Clock()
        recorder = TraceRecorder()
        core = make_core(recorder=recorder, clock=clock)
        connect_node(core, 1, 1)
        connect_node(core, 2, 2)
        core.handle_frame(1, Subscribe(("sports",)))
        publish(core, 2, ["sports"], source=2)
        clock.now = 3.0
        summary = core.shutdown()
        assert core.sessions == {}
        (end,) = recorder.events_of("sim_end")
        assert end.fields["messages"] == 1
        assert end.fields["contacts"] == 2
        assert summary["delivery_ratio"] == 1.0
        with pytest.raises(ProtocolError, match="shutting down"):
            core.connect(9, "late")

    def test_decode_error_accounting(self):
        from repro.pubsub.wire import FrameError

        core = make_core()
        core.connect(1, "p")
        core.handle_decode_error(
            1, FrameError(0, 0xEE, "unknown_frame_type", "x")
        )
        assert core.registry.counter("serve_decode_errors_total").value == 1
        assert core.registry.counter(
            "serve_decode_error_unknown_frame_type_total"
        ).value == 1
