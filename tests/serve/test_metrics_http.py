"""Metrics/ops HTTP endpoint: routing, healthz, and the live tailer.

The metrics responder historically answered any GET with the
Prometheus document; these tests pin the routed behaviour — exact
``/metrics`` and ``/healthz`` paths, 404 for everything else, 400 for
non-GET — plus the ``spec.live`` in-broker LiveTailer wiring end to
end over real sockets.
"""

import asyncio
import json

from repro.obs.registry import MetricsRegistry
from repro.serve import (
    BrokerFleet,
    BrokerServer,
    LoadDriver,
    LoadSpec,
    ServeSpec,
)
from repro.serve.broker import http_response, parse_request_path


async def http_get(host, port, path, method="GET"):
    """(status line, body bytes) of one raw HTTP exchange."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"{method} {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
    await writer.drain()
    raw = await asyncio.wait_for(reader.read(), timeout=10.0)
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    return head.split(b"\r\n")[0].decode(), body


class TestRequestParsing:
    def test_get_path_extracted(self):
        assert parse_request_path(b"GET /metrics HTTP/1.1") == "/metrics"

    def test_query_string_stripped(self):
        head = b"GET /healthz?verbose=1 HTTP/1.1"
        assert parse_request_path(head) == "/healthz"

    def test_non_get_rejected(self):
        assert parse_request_path(b"POST /metrics HTTP/1.1") is None

    def test_garbage_rejected(self):
        assert parse_request_path(b"\x00\x01\x02") is None
        assert parse_request_path(b"GET") is None

    def test_response_shape(self):
        blob = http_response(404, b"not found\n")
        assert blob.startswith(b"HTTP/1.1 404 Not Found\r\n")
        assert b"Connection: close\r\n" in blob
        assert b"Content-Length: 10\r\n" in blob
        assert blob.endswith(b"\r\n\r\nnot found\n")


class TestBrokerRouting:
    def run_routes(self, **spec_kwargs):
        async def main():
            spec = ServeSpec(port=0, metrics_port=0, idle_timeout_s=30.0,
                             **spec_kwargs)
            server = BrokerServer(spec, registry=MetricsRegistry())
            await server.start()
            try:
                host, port = spec.host, server.metrics_port
                results = {
                    "metrics": await http_get(host, port, "/metrics"),
                    "healthz": await http_get(host, port, "/healthz"),
                    "unknown": await http_get(host, port, "/nope"),
                    "post": await http_get(host, port, "/metrics",
                                           method="POST"),
                }
            finally:
                await server.stop()
            return results

        return asyncio.run(main())

    def test_routes(self):
        results = self.run_routes()
        status, body = results["metrics"]
        assert status == "HTTP/1.1 200 OK"
        assert b"serve_" in body
        status, body = results["healthz"]
        assert status == "HTTP/1.1 200 OK"
        doc = json.loads(body)
        assert doc["status"] == "ok"
        assert doc["live"] is False
        assert doc["workers"] == [{"worker": 0, "alive": True}]
        status, _body = results["unknown"]
        assert status == "HTTP/1.1 404 Not Found"
        status, _body = results["post"]
        assert status == "HTTP/1.1 400 Bad Request"


class TestLiveBroker:
    def test_live_tailer_parity_and_metrics(self, tmp_path):
        trace_path = str(tmp_path / "trace.jsonl")

        async def main():
            spec = ServeSpec(
                port=0, metrics_port=0, idle_timeout_s=30.0,
                trace_path=trace_path, live=True,
            )
            server = BrokerServer(spec, registry=MetricsRegistry())
            await server.start()
            report = await LoadDriver(LoadSpec(
                port=server.port, sessions=20, publisher_fraction=0.25,
                duration_s=1.5, publish_rate_per_s=2.0,
                interests_per_node=2, seed=13,
            )).run()
            _status, prom = await http_get(
                spec.host, server.metrics_port, "/metrics"
            )
            _status, health = await http_get(
                spec.host, server.metrics_port, "/healthz"
            )
            summary = await server.stop()
            return report, prom, json.loads(health), summary

        report, prom, health, summary = asyncio.run(main())
        assert report.decode_errors == 0
        assert report.messages_published > 0
        # The registry mirror grows live_* series and window gauges.
        assert b"live_events_total" in prom
        assert b"live_deliveries_total" in prom
        assert b"live_window_delay_p95_s" in prom
        assert health["live"] is True
        # Shutdown runs the in-process parity checkpoint: the tailer fed
        # from the recorder bus must agree with the dispatcher counters.
        assert summary["live_parity_ok"] is True
        assert summary["live"]["totals"]["messages_created"] > 0

    def test_live_without_trace_recorder_is_inert(self):
        async def main():
            spec = ServeSpec(port=0, idle_timeout_s=30.0, live=True)
            server = BrokerServer(spec)
            await server.start()
            try:
                return server.tailer
            finally:
                await server.stop()

        assert asyncio.run(main()) is None


class TestFleetRouting:
    def test_fleet_metrics_healthz_and_live_parity(self, tmp_path):
        trace_path = str(tmp_path / "trace.jsonl")

        async def main():
            spec = ServeSpec(
                port=0, metrics_port=0, workers=2, idle_timeout_s=30.0,
                trace_path=trace_path, live=True,
            )
            fleet = BrokerFleet(spec)
            await fleet.start()
            report = await LoadDriver(LoadSpec(
                port=fleet.port, sessions=30, publisher_fraction=0.25,
                duration_s=2.0, publish_rate_per_s=2.0,
                interests_per_node=2, seed=13,
            )).run()
            host, port = spec.host, fleet.metrics_port
            results = {
                "metrics": await http_get(host, port, "/metrics"),
                "healthz": await http_get(host, port, "/healthz"),
                "unknown": await http_get(host, port, "/nope"),
            }
            summary = await fleet.stop()
            return report, results, summary

        report, results, summary = asyncio.run(main())
        assert report.decode_errors == 0
        status, body = results["metrics"]
        assert status == "HTTP/1.1 200 OK"
        assert b"serve_" in body  # merged across both workers
        status, body = results["healthz"]
        assert status == "HTTP/1.1 200 OK"
        doc = json.loads(body)
        assert doc["status"] == "ok"
        assert len(doc["workers"]) == 2
        assert all(w["alive"] for w in doc["workers"])
        assert {w["worker"] for w in doc["workers"]} == {0, 1}
        status, _body = results["unknown"]
        assert status == "HTTP/1.1 404 Not Found"
        # Every worker ran its own shutdown parity checkpoint.
        assert summary["live_parity_ok"] is True
