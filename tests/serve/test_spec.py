"""ServeSpec / LoadSpec: parse grammar, aliases, validation, derivation."""

import dataclasses

import pytest

from repro.faults.spec import FaultSpec
from repro.serve.spec import (
    ARRIVAL_PROFILES,
    MATCHING_MODES,
    LoadSpec,
    ServeSpec,
)


class TestServeSpecParse:
    def test_defaults(self):
        spec = ServeSpec()
        assert spec.host == "127.0.0.1"
        assert spec.port == 7410
        assert spec.matching == "exact"
        assert spec.metrics_port is None
        assert spec.faults is None

    def test_parse_round_trip(self):
        spec = ServeSpec.parse(
            "port=0,matching=bloom,num_bits=512,idle_timeout_s=30"
        )
        assert spec.port == 0
        assert spec.matching == "bloom"
        assert spec.num_bits == 512
        assert spec.idle_timeout_s == 30.0

    def test_paper_aliases_resolve(self):
        # m/k/df mean the same thing in every spec string the project
        # accepts (core.params.SPEC_KEY_ALIASES).
        spec = ServeSpec.parse("m=512,k=6,df=0.5")
        assert spec.num_bits == 512
        assert spec.num_hashes == 6
        assert spec.df_per_min == 0.5

    def test_nested_fault_grammar(self):
        spec = ServeSpec.parse("port=0,faults=loss:0.1+seed:3")
        assert isinstance(spec.faults, FaultSpec)
        assert spec.faults.frame_loss == 0.1
        assert spec.faults.seed == 3

    def test_none_values(self):
        spec = ServeSpec.parse("metrics_port=none,max_sessions=off")
        assert spec.metrics_port is None
        assert spec.max_sessions is None

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown ServeSpec key"):
            ServeSpec.parse("bogus=1")

    def test_missing_equals_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            ServeSpec.parse("port")


class TestServeSpecValidation:
    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(port=70000), "port"),
            (dict(num_bits=1), "num_bits"),
            (dict(num_hashes=0), "num_hashes"),
            (dict(initial_value=0.0), "initial_value"),
            (dict(df_per_min=-1.0), "df_per_min"),
            (dict(matching="fuzzy"), "matching"),
            (dict(idle_timeout_s=0.0), "idle_timeout_s"),
            (dict(max_frame_bytes=8), "max_frame_bytes"),
            (dict(max_sessions=0), "max_sessions"),
        ],
    )
    def test_rejects(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            ServeSpec(**kwargs)

    def test_faults_type_checked(self):
        with pytest.raises(TypeError, match="FaultSpec"):
            ServeSpec(faults="loss=0.1")

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ServeSpec().port = 9


class TestServeSpecHelpers:
    def test_with_helpers_derive(self):
        spec = (
            ServeSpec()
            .with_port(0)
            .with_metrics_port(0)
            .with_matching("bloom")
            .with_filter("multi:mem=384")
            .with_trace("/tmp/t.jsonl")
        )
        assert (spec.port, spec.metrics_port) == (0, 0)
        assert spec.matching == "bloom"
        assert spec.filter_spec == "multi:mem=384"
        assert spec.trace_path == "/tmp/t.jsonl"
        # Derivation never mutates the source.
        assert ServeSpec().port == 7410

    def test_describe_mentions_the_load_bearing_knobs(self):
        text = ServeSpec(
            metrics_port=9100,
            faults=FaultSpec(frame_loss=0.1),
            trace_path="x.jsonl",
        ).describe()
        for token in ("matching=exact", "m=256", "k=4", "metrics:9100",
                      "faults[", "trace=x.jsonl"):
            assert token in text, token


class TestLoadSpec:
    def test_defaults_and_publishers(self):
        spec = LoadSpec()
        assert spec.sessions == 100
        assert spec.num_publishers == 10
        assert LoadSpec(sessions=3, publisher_fraction=0.0).num_publishers == 1

    def test_parse_with_aliases_and_faults(self):
        spec = LoadSpec.parse(
            "sessions=500,duration_s=30,arrival=conference,"
            "m=512,faults=trunc:0.2+seed:9"
        )
        assert spec.sessions == 500
        assert spec.arrival == "conference"
        assert spec.num_bits == 512
        assert spec.faults.truncation == 0.2

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(sessions=0), "sessions"),
            (dict(publisher_fraction=1.5), "publisher_fraction"),
            (dict(duration_s=0.0), "duration_s"),
            (dict(publish_rate_per_s=0.0), "publish_rate_per_s"),
            (dict(arrival="nightly"), "arrival"),
            (dict(interests_per_node=0), "interests_per_node"),
            (dict(keys_per_message=0), "keys_per_message"),
            (dict(ttl_s=0.0), "ttl_s"),
            (dict(size_bytes=0), "size_bytes"),
        ],
    )
    def test_rejects(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            LoadSpec(**kwargs)

    def test_with_helpers(self):
        spec = (
            LoadSpec()
            .with_target("10.0.0.1", 9000)
            .with_sessions(5)
            .with_duration(2.0)
            .with_seed(42)
        )
        assert (spec.host, spec.port) == ("10.0.0.1", 9000)
        assert (spec.sessions, spec.duration_s, spec.seed) == (5, 2.0, 42)

    def test_every_arrival_profile_is_known(self):
        for name in ARRIVAL_PROFILES:
            assert LoadSpec(arrival=name).arrival == name

    def test_every_matching_mode_is_known(self):
        for name in MATCHING_MODES:
            assert ServeSpec(matching=name).matching == name


class TestParseTableCoversFields:
    """Every dataclass field stays reachable from the CLI grammar."""

    @pytest.mark.parametrize("cls", [ServeSpec, LoadSpec])
    def test_parse_fields_match_dataclass(self, cls):
        names = {f.name for f in dataclasses.fields(cls)}
        assert set(cls._PARSE_FIELDS) == names


class TestFleetSpecFields:
    """The fleet knobs added for multi-worker serving."""

    def test_workers_default_is_single_process(self):
        spec = ServeSpec()
        assert spec.workers == 1
        assert spec.state_dir is None

    def test_parse_workers_and_state_dir(self):
        spec = ServeSpec.parse("workers=4,state_dir=/tmp/state")
        assert spec.workers == 4
        assert spec.state_dir == "/tmp/state"

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            ServeSpec(workers=0)

    def test_with_workers_replaces_both(self):
        spec = ServeSpec().with_workers(2, "/tmp/s")
        assert (spec.workers, spec.state_dir) == (2, "/tmp/s")
        assert ServeSpec().workers == 1

    def test_describe_mentions_fleet_only_when_active(self):
        assert "workers=" not in ServeSpec().describe()
        text = ServeSpec(workers=3, state_dir="/tmp/s").describe()
        assert "workers=3" in text
        assert "state=/tmp/s" in text


class TestLoadShardingFields:
    """node_offset / ramp_s: sharding one workload across drivers."""

    def test_defaults(self):
        spec = LoadSpec()
        assert spec.node_offset == 0
        assert spec.ramp_s is None

    def test_parse_offset_and_ramp(self):
        spec = LoadSpec.parse("node_offset=1000,ramp_s=5")
        assert spec.node_offset == 1000
        assert spec.ramp_s == 5.0

    def test_ramp_none_spelling(self):
        assert LoadSpec.parse("ramp_s=none").ramp_s is None

    def test_node_offset_must_be_nonnegative(self):
        with pytest.raises(ValueError, match="node_offset"):
            LoadSpec(node_offset=-1)

    def test_ramp_must_be_positive_when_set(self):
        with pytest.raises(ValueError, match="ramp_s"):
            LoadSpec(ramp_s=0.0)

    def test_bind_host_defaults_to_kernel_choice(self):
        assert LoadSpec().bind_host is None

    def test_parse_bind_host(self):
        spec = LoadSpec.parse("bind_host=127.0.0.12")
        assert spec.bind_host == "127.0.0.12"

    def test_bind_host_none_spelling(self):
        assert LoadSpec.parse("bind_host=none").bind_host is None

    def test_bind_host_rejects_blank(self):
        with pytest.raises(ValueError, match="bind_host"):
            LoadSpec(bind_host="  ")
