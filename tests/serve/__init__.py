"""Tests for the live serving layer (repro.serve)."""
