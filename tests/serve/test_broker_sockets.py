"""BrokerServer over real sockets: framing, robustness, parity.

No pytest-asyncio in the toolchain, so each test is a plain sync
function driving its own event loop via ``asyncio.run`` — the broker
binds port 0 (ephemeral) and every client connects over loopback.
"""

import asyncio
import json
import struct

import pytest

from repro.obs.analyze import analyze_trace
from repro.pubsub.messages import Message
from repro.pubsub.wire import (
    Hello,
    MessageBundle,
    StreamDecoder,
    Subscribe,
    encode_frame,
)
from repro.serve import BrokerServer, LoadDriver, LoadSpec, ServeSpec


def make_server(**spec_kwargs):
    spec_kwargs.setdefault("port", 0)
    spec_kwargs.setdefault("idle_timeout_s", 30.0)
    return BrokerServer(ServeSpec(**spec_kwargs))


class Client:
    """Minimal test client: one socket + one stream decoder."""

    def __init__(self, server):
        self.server = server
        self.decoder = StreamDecoder(server.core.family, 50.0)
        self.reader = None
        self.writer = None

    async def connect(self, node_id=None):
        self.reader, self.writer = await asyncio.open_connection(
            self.server.spec.host, self.server.port
        )
        if node_id is not None:
            await self.send(Hello(node_id, False, 0, 0.0))
            reply = await self.recv()
            assert reply.is_broker
        return self

    async def send(self, frame):
        self.writer.write(encode_frame(frame))
        await self.writer.drain()

    async def send_raw(self, data):
        self.writer.write(data)
        await self.writer.drain()

    async def recv(self, timeout=5.0):
        """The next decoded frame (reads until one completes)."""
        while True:
            if self.decoder.fatal is not None:
                raise AssertionError(self.decoder.fatal)
            chunk = await asyncio.wait_for(
                self.reader.read(4096), timeout=timeout
            )
            assert chunk, "broker closed the connection"
            result = self.decoder.feed(chunk)
            if result.frames:
                self._queued = list(result.frames[1:])
                return result.frames[0]

    async def expect_eof(self, timeout=5.0):
        while True:
            chunk = await asyncio.wait_for(
                self.reader.read(4096), timeout=timeout
            )
            if not chunk:
                return
            self.decoder.feed(chunk)

    async def close(self):
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass


async def wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition never became true")
        await asyncio.sleep(interval)


def bundle(keys, source, payload=b"hi"):
    message = Message.create(
        keys=frozenset(keys), source=source, created_at=0.0,
        ttl_s=600.0, size_bytes=len(payload),
    )
    return MessageBundle((message,), (payload,))


class TestWireOverSockets:
    def test_frame_split_across_tcp_segments(self):
        async def main():
            server = await make_server().start()
            try:
                client = await Client(server).connect()
                blob = encode_frame(Hello(7, False, 0, 0.0))
                # One byte per segment, with real socket round-trips.
                for i in range(len(blob)):
                    await client.send_raw(blob[i:i + 1])
                    await asyncio.sleep(0)
                reply = await client.recv()
                assert reply.is_broker
                await client.close()
            finally:
                await server.stop()

        asyncio.run(main())

    def test_coalesced_frames_in_one_segment(self):
        async def main():
            server = await make_server().start()
            try:
                client = await Client(server).connect()
                blob = (
                    encode_frame(Hello(7, False, 0, 0.0))
                    + encode_frame(Subscribe(("sports",)))
                    + encode_frame(bundle(["sports"], source=7))
                )
                await client.send_raw(blob)
                reply = await client.recv()
                assert reply.is_broker
                await wait_until(
                    lambda: server.core.subscriptions.get(7) is not None
                )
                parity = server.core.parity_counters()
                assert parity["messages_created"] == 1
                await client.close()
            finally:
                await server.stop()

        asyncio.run(main())

    def test_mid_frame_disconnect_is_counted_not_fatal(self):
        async def main():
            server = await make_server().start()
            try:
                client = await Client(server).connect(node_id=3)
                blob = encode_frame(Subscribe(("sports", "news")))
                await client.send_raw(blob[: len(blob) - 2])
                await client.close()
                await wait_until(
                    lambda: server.registry.counter(
                        "serve_midframe_disconnects_total"
                    ).value == 1
                )
                # The broker keeps serving new sessions afterwards.
                other = await Client(server).connect(node_id=4)
                await other.close()
            finally:
                await server.stop()

        asyncio.run(main())

    def test_oversized_declared_length_never_crashes_session(self):
        async def main():
            server = await make_server(max_frame_bytes=1024).start()
            try:
                victim = await Client(server).connect(node_id=3)
                # A header lying about a 1 GiB body: the broker must
                # reject it up front and close only this session.
                await victim.send_raw(struct.pack("<BI", 0x14, 1 << 30))
                await victim.expect_eof()
                registry = server.registry
                assert registry.counter("serve_decode_errors_total").value == 1
                assert registry.counter(
                    "serve_decode_error_oversized_body_total"
                ).value == 1
                bystander = await Client(server).connect(node_id=4)
                await bystander.send(Hello(4, False, 0, 1.0))
                assert (await bystander.recv()).is_broker
                await bystander.close()
            finally:
                await server.stop()

        asyncio.run(main())

    def test_garbage_type_byte_closes_only_that_session(self):
        async def main():
            server = await make_server().start()
            try:
                victim = await Client(server).connect(node_id=3)
                await victim.send_raw(b"\xee\x00\x00\x00\x00")
                await victim.expect_eof()
                assert server.registry.counter(
                    "serve_decode_error_unknown_frame_type_total"
                ).value == 1
            finally:
                await server.stop()

        asyncio.run(main())


class TestBrokerBehaviour:
    def test_publish_delivers_to_live_subscriber(self):
        async def main():
            server = await make_server().start()
            try:
                sub = await Client(server).connect(node_id=1)
                await sub.send(Subscribe(("sports",)))
                await wait_until(lambda: 1 in server.core.subscriptions)
                pub = await Client(server).connect(node_id=2)
                await pub.send(bundle(["sports"], source=2, payload=b"goal"))
                delivered = await sub.recv()
                assert isinstance(delivered, MessageBundle)
                assert delivered.payloads == (b"goal",)
                assert "sports" in delivered.messages[0].keys
                await sub.close()
                await pub.close()
            finally:
                await server.stop()

        asyncio.run(main())

    def test_durable_subscription_survives_reconnect(self):
        async def main():
            server = await make_server().start()
            try:
                sub = await Client(server).connect(node_id=1)
                await sub.send(Subscribe(("sports",)))
                await wait_until(lambda: 1 in server.core.subscriptions)
                await sub.close()
                await wait_until(lambda: 1 not in server.core.node_sessions)
                # Reconnect with only a Hello — no resubscribe.
                sub2 = await Client(server).connect(node_id=1)
                pub = await Client(server).connect(node_id=2)
                await pub.send(bundle(["sports"], source=2))
                delivered = await sub2.recv()
                assert isinstance(delivered, MessageBundle)
                await sub2.close()
                await pub.close()
            finally:
                await server.stop()

        asyncio.run(main())

    def test_idle_timeout_closes_silent_session(self):
        async def main():
            server = await make_server(idle_timeout_s=0.2).start()
            try:
                client = await Client(server).connect(node_id=1)
                await client.expect_eof(timeout=5.0)
                assert server.registry.counter(
                    "serve_idle_timeouts_total"
                ).value == 1
            finally:
                await server.stop()

        asyncio.run(main())

    def test_graceful_shutdown_closes_clients(self):
        async def main():
            server = await make_server().start()
            client = await Client(server).connect(node_id=1)
            summary = await server.stop()
            assert summary["sessions_served"] == 1
            await client.expect_eof()
            await client.close()

        asyncio.run(main())

    def test_prometheus_scrape_is_nonempty(self):
        async def main():
            server = await make_server(metrics_port=0).start()
            try:
                client = await Client(server).connect(node_id=1)
                reader, writer = await asyncio.open_connection(
                    server.spec.host, server.metrics_port
                )
                writer.write(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
                await writer.drain()
                response = (await reader.read()).decode()
                writer.close()
                assert response.startswith("HTTP/1.1 200 OK")
                assert "text/plain" in response
                assert "serve_sessions_total 1" in response
                await client.close()
            finally:
                await server.stop()

        asyncio.run(main())


class TestObservabilityParity:
    def test_trace_analysis_matches_live_registry_exactly(self, tmp_path):
        """The acceptance criterion: offline == online, number for number."""
        trace_path = tmp_path / "broker_trace.jsonl"

        async def main():
            server = await BrokerServer(
                ServeSpec(port=0, trace_path=str(trace_path))
            ).start()
            driver = LoadDriver(
                LoadSpec(
                    port=server.port, sessions=30, publisher_fraction=0.3,
                    duration_s=2.0, publish_rate_per_s=3.0,
                    interests_per_node=2, seed=13,
                )
            )
            report = await driver.run()
            summary = await server.stop()
            return server, report, summary

        server, report, summary = asyncio.run(main())
        assert report.decode_errors == 0
        assert report.messages_published > 0
        analysis = analyze_trace(str(trace_path))
        parity = server.core.parity_counters()
        assert analysis.messages["created"] == parity["messages_created"]
        assert analysis.messages["intended_pairs"] == parity["intended_pairs"]
        assert analysis.forwards["direct"] == parity["forwards_direct"]
        assert analysis.deliveries["total"] == parity["deliveries_total"]
        assert analysis.deliveries["intended"] == parity["deliveries_intended"]
        assert analysis.deliveries["false"] == parity["deliveries_false"]
        assert analysis.deliveries["delivery_ratio"] == pytest.approx(
            summary["delivery_ratio"]
        )
        assert analysis.engine["messages"] == summary["messages"]
        # The client saw exactly what the broker sent.
        assert report.deliveries_received == parity["deliveries_total"]

    def test_trace_meta_is_schema_v2(self, tmp_path):
        trace_path = tmp_path / "t.jsonl"

        async def main():
            server = await BrokerServer(
                ServeSpec(port=0, trace_path=str(trace_path))
            ).start()
            client = await Client(server).connect(node_id=1)
            await client.close()
            await server.stop()

        asyncio.run(main())
        meta = json.loads(trace_path.read_text().splitlines()[0])
        assert meta["type"] == "trace_meta"
        assert meta["schema"] == 2


class TestChaosLoad:
    def test_corrupted_frames_counted_never_crash(self):
        """Client-side corruption chaos: broker counts, keeps serving."""

        async def main():
            server = await make_server().start()
            from repro.faults.spec import FaultSpec

            driver = LoadDriver(
                LoadSpec(
                    port=server.port, sessions=12, publisher_fraction=0.5,
                    duration_s=1.5, publish_rate_per_s=4.0, seed=3,
                    faults=FaultSpec(corruption=0.5, truncation=0.2, seed=5),
                )
            )
            report = await driver.run()
            summary = await server.stop()
            return server, report, summary

        server, report, summary = asyncio.run(main())
        assert report.faults_injected > 0
        registry = server.registry
        chaos_seen = (
            registry.counter("serve_decode_errors_total").value
            + registry.counter("serve_midframe_disconnects_total").value
        )
        assert chaos_seen > 0
        # Clean frames still flowed end to end.
        assert summary["messages"] > 0


class TestBindHost:
    def test_sessions_bind_alternate_loopback_source(self):
        """bind_host=127.0.0.x gives a shard its own ephemeral-port space."""

        async def main():
            server = await make_server().start()
            driver = LoadDriver(
                LoadSpec(
                    port=server.port, sessions=5, publisher_fraction=0.5,
                    duration_s=1.0, publish_rate_per_s=4.0, seed=11,
                    bind_host="127.0.0.9",
                )
            )
            report = await driver.run()
            summary = await server.stop()
            return report, summary

        report, summary = asyncio.run(main())
        assert report.sessions_connected == 5
        assert report.connect_failures == 0
        assert report.decode_errors == 0
        assert summary["messages"] > 0
