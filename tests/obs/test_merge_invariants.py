"""TCBF merge invariants — property-tested and observed via the tracer.

Two layers of the same paper claims (Sec. V-C, Fig. 6):

* **M-merge never amplifies**: the element-wise maximum of two filters
  cannot exceed either input's largest counter, which is why
  broker↔broker exchange uses M-merge — repeated A-merging between
  brokers would pump counters without bound (the Fig. 6 bogus-counter
  loop).
* **A-merge reinforcement is monotone**: additively merging an
  announcement can only raise counters, and a consumer announcement
  leaves every announced key's counter at >= C.

The ``TestTraceObserved*`` classes check the invariants over every
merge event of the instrumented mini Fig. 7 run; the hypothesis tests
check them directly on randomly built filters.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tcbf import TemporalCountingBloomFilter
from repro.experiments import ExperimentConfig

from .conftest import MINI_FIG7_CONFIG

KEYS = st.lists(
    st.text(alphabet="abcdefghij", min_size=1, max_size=4),
    min_size=0,
    max_size=8,
)


def make_filter(keys, seed=11):
    return TemporalCountingBloomFilter.of(
        keys, num_bits=32, num_hashes=2, seed=seed
    )


class TestMMergeProperties:
    @given(KEYS, KEYS)
    @settings(max_examples=50, deadline=None)
    def test_m_merge_is_elementwise_max(self, keys_a, keys_b):
        # counters() is a {bit position: counter value} snapshot.
        a, b = make_filter(keys_a), make_filter(keys_b)
        merged = a.m_merged(b)
        for position in set(a.counters()) | set(b.counters()):
            assert merged.counter(position) == max(
                a.counter(position), b.counter(position)
            )

    @given(KEYS, KEYS)
    @settings(max_examples=50, deadline=None)
    def test_m_merge_never_amplifies_above_inputs(self, keys_a, keys_b):
        a, b = make_filter(keys_a), make_filter(keys_b)
        merged = a.m_merged(b)
        ceiling = max(
            max(a.counters().values(), default=0),
            max(b.counters().values(), default=0),
        )
        assert max(merged.counters().values(), default=0) <= ceiling

    @given(KEYS)
    @settings(max_examples=50, deadline=None)
    def test_m_merge_idempotent(self, keys):
        a = make_filter(keys)
        assert dict(a.m_merged(a).counters()) == dict(a.counters())


class TestAMergeProperties:
    @given(KEYS, KEYS)
    @settings(max_examples=50, deadline=None)
    def test_a_merge_is_elementwise_sum(self, keys_a, keys_b):
        a, b = make_filter(keys_a), make_filter(keys_b)
        merged = a.a_merged(b)
        for position in set(a.counters()) | set(b.counters()):
            assert merged.counter(position) == pytest.approx(
                a.counter(position) + b.counter(position)
            )

    @given(KEYS, KEYS)
    @settings(max_examples=50, deadline=None)
    def test_a_merge_monotone_per_key(self, keys_a, keys_b):
        a, b = make_filter(keys_a), make_filter(keys_b)
        merged = a.a_merged(b)
        for key in keys_a:
            assert merged.min_counter(key) >= a.min_counter(key)


class TestFig6BogusCounterContrast:
    def test_repeated_a_merge_amplifies_but_m_merge_does_not(self):
        # The Fig. 6 scenario distilled: two brokers exchanging the
        # same announcement over and over.  A-merging pumps the
        # counter by C per exchange; M-merging pins it at C.
        announcement = make_filter(["news"])
        c = announcement.initial_value
        additive = make_filter(["news"])
        maximum = make_filter(["news"])
        for _ in range(5):
            additive = additive.a_merged(announcement)
            maximum = maximum.m_merged(announcement)
        assert additive.min_counter("news") == pytest.approx(6 * c)
        assert maximum.min_counter("news") == pytest.approx(c)


class TestTraceObservedMergeInvariants:
    def test_m_merge_events_never_amplify(self, mini_fig7):
        obs, _ = mini_fig7
        events = obs.tracer.events_of("m_merge")
        assert events, "mini run produced no broker<->broker M-merges"
        for event in events:
            f = event.fields
            assert f["max_after"] <= max(f["max_before"], f["max_peer"]) + 1e-9
            assert f["max_after"] >= f["max_before"] - 1e-9

    def test_a_merge_events_monotone_and_reinforce_to_c(self, mini_fig7):
        obs, _ = mini_fig7
        initial_value = ExperimentConfig(**MINI_FIG7_CONFIG).initial_value
        events = obs.tracer.events_of("a_merge")
        assert events, "mini run produced no consumer announcements"
        for event in events:
            f = event.fields
            assert f["max_after"] >= f["max_before"] - 1e-9
            if f["kind"] == "consumer" and f["num_keys"] > 0:
                assert f["min_key_counter_after"] >= initial_value - 1e-9

    def test_decay_tick_events_only_clear_bits(self, mini_fig7):
        obs, _ = mini_fig7
        events = obs.tracer.events_of("decay_tick")
        assert events
        for event in events:
            f = event.fields
            assert f["dt"] > 0.0
            assert f["df"] > 0.0
            assert 0 <= f["set_bits_after"] <= f["set_bits_before"]


class TestTraceMatchesSummary:
    """The event trace and the MetricsSummary must tell one story."""

    def test_forward_events_match_forwarding_count(self, mini_fig7):
        obs, result = mini_fig7
        assert len(obs.tracer.events_of("forward")) == (
            result.summary.num_forwardings
        )

    def test_delivery_events_match_delivery_records(self, mini_fig7):
        obs, result = mini_fig7
        deliveries = obs.tracer.events_of("delivery")
        assert len(deliveries) == result.summary.num_deliveries
        false = sum(1 for e in deliveries if not e.fields["intended"])
        assert false == result.summary.num_false_deliveries

    def test_false_injection_events_match_count(self, mini_fig7):
        obs, result = mini_fig7
        assert len(obs.tracer.events_of("false_injection")) == (
            result.summary.num_false_injections
        )

    def test_contact_events_match_engine_count(self, mini_fig7):
        obs, result = mini_fig7
        assert len(obs.tracer.events_of("contact")) == (
            result.engine.num_contacts
        )

    def test_forward_kinds_partition(self, mini_fig7):
        obs, _ = mini_fig7
        kinds = {e.fields["kind"] for e in obs.tracer.events_of("forward")}
        assert kinds <= {"direct", "inject", "relay"}
        for event in obs.tracer.events_of("forward"):
            if event.fields["kind"] == "relay":
                assert "pref" in event.fields
