"""Unit tests for :mod:`repro.obs.lineage`."""

import pytest

from repro.obs import LineageBuilder, TraceEvent


def _event(seq, t, type_, **fields):
    return TraceEvent(seq=seq, t=t, type=type_, fields=fields)


def _feed(builder, events):
    for event in events:
        builder.feed(event)


class TestChainReconstruction:
    def test_multi_hop_chain_and_decomposition(self):
        # producer 0 creates at t=10, injects to broker 1 at t=40,
        # broker 1 relays to broker 2 at t=100, broker 2 direct-forwards
        # to consumer 3 at t=160, delivered at t=160.
        finalized = []
        builder = LineageBuilder(on_finalized=finalized.append)
        _feed(builder, [
            _event(0, 10.0, "create", msg=0, node=0, ttl=1000.0,
                   num_intended=1),
            _event(1, 40.0, "forward", msg=0, kind="inject", src=0, dst=1),
            _event(2, 100.0, "forward", msg=0, kind="relay", src=1, dst=2),
            _event(3, 160.0, "forward", msg=0, kind="direct", src=2, dst=3),
            _event(4, 160.0, "delivery", msg=0, node=3, intended=True,
                   cause="direct"),
        ])
        builder.flush()
        assert len(finalized) == 1
        lineage = finalized[0]
        assert lineage.closed_by == "end_of_trace"
        leg = lineage.deliveries[0]
        assert leg.chain_label() == (
            "0-(inject)->1 1-(relay)->2 2-(direct)->3"
        )
        assert leg.delay_s == 150.0
        decomposition = leg.decomposition
        assert decomposition.producer_wait_s == 30.0
        assert decomposition.dwells == ((1, 60.0), (2, 60.0))
        assert decomposition.carry_s == 120.0
        assert decomposition.final_hop_s == 0.0

    def test_decomposition_telescopes_to_delay(self):
        finalized = []
        builder = LineageBuilder(on_finalized=finalized.append)
        _feed(builder, [
            _event(0, 5.0, "create", msg=0, node=0, ttl=10_000.0,
                   num_intended=1),
            _event(1, 17.5, "forward", msg=0, kind="inject", src=0, dst=4),
            _event(2, 33.25, "forward", msg=0, kind="direct", src=4, dst=9),
            _event(3, 34.0, "delivery", msg=0, node=9, intended=True),
        ])
        builder.flush()
        leg = finalized[0].deliveries[0]
        d = leg.decomposition
        assert (
            d.producer_wait_s + d.carry_s + d.final_hop_s
            == pytest.approx(leg.delay_s, abs=0.0)
        )

    def test_chain_picks_latest_arrival_before_delivery(self):
        # Node 3 receives two copies (from 1 at t=50, from 2 at t=80);
        # the chain behind its t=90 delivery must come through node 2.
        finalized = []
        builder = LineageBuilder(on_finalized=finalized.append)
        _feed(builder, [
            _event(0, 0.0, "create", msg=0, node=0, ttl=1000.0,
                   num_intended=1),
            _event(1, 10.0, "forward", msg=0, kind="inject", src=0, dst=1),
            _event(2, 20.0, "forward", msg=0, kind="inject", src=0, dst=2),
            _event(3, 50.0, "forward", msg=0, kind="direct", src=1, dst=3),
            _event(4, 80.0, "forward", msg=0, kind="direct", src=2, dst=3),
            _event(5, 90.0, "delivery", msg=0, node=3, intended=True),
        ])
        builder.flush()
        leg = finalized[0].deliveries[0]
        assert leg.chain_label() == "0-(inject)->2 2-(direct)->3"

    def test_schema1_trace_without_create_yields_stub(self):
        # Old traces have no create events: the delivery still gets a
        # chain, but no delay and no producer-wait component.
        finalized = []
        builder = LineageBuilder(on_finalized=finalized.append)
        _feed(builder, [
            _event(0, 10.0, "forward", msg=7, kind="direct", src=0, dst=1),
            _event(1, 10.0, "delivery", msg=7, node=1, intended=True),
        ])
        builder.flush()
        lineage = finalized[0]
        assert lineage.created_at is None
        leg = lineage.deliveries[0]
        assert leg.delay_s is None
        assert leg.chain_label() == "0-(direct)->1"
        assert leg.decomposition.producer_wait_s is None


class TestStreamingFinalization:
    def test_expiry_finalizes_and_drops_lineage(self):
        finalized = []
        builder = LineageBuilder(on_finalized=finalized.append)
        builder.feed(_event(0, 0.0, "create", msg=0, node=0, ttl=100.0,
                            num_intended=0))
        assert builder.num_live == 1
        # An event exactly at the TTL horizon must NOT finalise (the
        # message is purged only strictly after expiry)...
        builder.feed(_event(1, 100.0, "contact", a=0, b=1))
        assert builder.num_live == 1
        # ...but the first event past it must.
        builder.feed(_event(2, 100.5, "contact", a=0, b=1))
        assert builder.num_live == 0
        assert finalized[0].closed_by == "expired"

    def test_sim_end_flushes_remaining(self):
        finalized = []
        builder = LineageBuilder(on_finalized=finalized.append)
        builder.feed(_event(0, 0.0, "create", msg=3, node=0, ttl=1e9,
                            num_intended=0))
        builder.feed(_event(1, 50.0, "sim_end", contacts=1, messages=1))
        assert builder.num_live == 0
        assert finalized[0].closed_by == "end_of_trace"
        assert builder.end_time == 50.0

    def test_peak_live_is_bounded_by_overlap_not_total(self):
        # 1000 messages, each living 10 time units, created 5 apart:
        # at most 3 overlap, so peak_live must stay tiny even though
        # the builder saw all 1000.
        builder = LineageBuilder()
        seq = 0
        for i in range(1000):
            builder.feed(_event(seq, 5.0 * i, "create", msg=i, node=0,
                                ttl=10.0, num_intended=0))
            seq += 1
        builder.flush()
        assert builder.finalized == 1000
        assert builder.peak_live <= 3

    def test_false_injection_tallied_on_lineage(self):
        finalized = []
        builder = LineageBuilder(on_finalized=finalized.append)
        _feed(builder, [
            _event(0, 0.0, "create", msg=0, node=0, ttl=100.0,
                   num_intended=0),
            _event(1, 5.0, "forward", msg=0, kind="inject", src=0, dst=2,
                   match="fp"),
            _event(2, 5.0, "false_injection", msg=0, src=0, dst=2),
        ])
        builder.flush()
        assert finalized[0].false_injections == 1
        assert finalized[0].hops[0].match == "fp"
