"""Unit tests for :mod:`repro.obs.registry`."""

import json

import pytest

from repro.obs import Histogram, MetricsRegistry


class TestCounter:
    def test_monotone(self):
        reg = MetricsRegistry()
        counter = reg.counter("x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError, match="cannot inc"):
            counter.inc(-1)

    def test_create_on_first_use(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")


class TestGauge:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("depth")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5


class TestHistogram:
    def test_fixed_edges_bucketing(self):
        h = Histogram("delay", edges=[1.0, 2.0, 5.0])
        for value in [0.5, 1.0, 1.5, 4.0, 100.0]:
            h.observe(value)
        # buckets: <=1, <=2, <=5, overflow
        assert h.buckets == [2, 1, 1, 1]
        assert h.count == 5
        assert h.mean == pytest.approx(107.0 / 5)

    def test_edges_must_be_strictly_increasing(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", edges=[1.0, 1.0, 2.0])
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", edges=[2.0, 1.0])

    def test_empty_edges_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", edges=[])

    def test_registry_requires_edges_on_creation(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="pass its edges"):
            reg.histogram("h")
        h = reg.histogram("h", edges=[1.0, 2.0])
        assert reg.histogram("h") is h
        assert reg.histogram("h", edges=[1.0, 2.0]) is h

    def test_edge_redeclaration_mismatch_is_an_error(self):
        reg = MetricsRegistry()
        reg.histogram("h", edges=[1.0, 2.0])
        with pytest.raises(ValueError, match="already declared"):
            reg.histogram("h", edges=[1.0, 3.0])


class TestSerialization:
    def test_to_dict_sorted(self):
        reg = MetricsRegistry()
        reg.counter("zulu").inc()
        reg.counter("alpha").inc(2)
        reg.gauge("mid").set(0.5)
        snapshot = reg.to_dict()
        assert list(snapshot["counters"]) == ["alpha", "zulu"]
        assert snapshot["gauges"] == {"mid": 0.5}

    def test_to_json_is_canonical_and_newline_terminated(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.histogram("h", edges=[1.0]).observe(0.5)
        text = reg.to_json()
        assert text.endswith("\n")
        body = text[:-1]
        assert (
            json.dumps(json.loads(body), sort_keys=True, separators=(",", ":"))
            == body
        )

    def test_identical_usage_identical_bytes(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("forwards").inc(10)
            reg.gauge("ratio").set(0.25)
            h = reg.histogram("fill", edges=[0.1, 0.5, 1.0])
            for v in (0.05, 0.45, 0.99):
                h.observe(v)
            return reg

        assert build().to_json() == build().to_json()

    def test_write_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        path = tmp_path / "metrics.json"
        reg.write_json(str(path))
        assert path.read_text() == reg.to_json()

    def test_numpy_values_serialize_as_plain(self):
        np = pytest.importorskip("numpy")
        reg = MetricsRegistry()
        reg.counter("n").inc(np.int64(3))
        reg.gauge("g").set(np.float64(0.5))
        snapshot = json.loads(reg.to_json())
        assert snapshot["counters"]["n"] == 3
        assert snapshot["gauges"]["g"] == 0.5


class TestPromExposition:
    def test_format_pinned_byte_for_byte(self):
        # The Prometheus text exposition is part of the public surface:
        # counters get _total, histograms emit cumulative buckets with
        # a +Inf bound plus _sum/_count, names are sanitised onto the
        # metric-name alphabet, and emission order is deterministic.
        reg = MetricsRegistry()
        reg.counter("bsub.forwards").inc(10)
        reg.gauge("run.delivery-ratio").set(0.25)
        h = reg.histogram("fill", edges=[0.1, 0.5, 1.0])
        for v in (0.05, 0.45, 0.99, 3.0):
            h.observe(v)
        assert reg.to_prom() == (
            "# TYPE bsub_forwards_total counter\n"
            "bsub_forwards_total 10\n"
            "# TYPE run_delivery_ratio gauge\n"
            "run_delivery_ratio 0.25\n"
            "# TYPE fill histogram\n"
            'fill_bucket{le="0.1"} 1\n'
            'fill_bucket{le="0.5"} 2\n'
            'fill_bucket{le="1.0"} 3\n'
            'fill_bucket{le="+Inf"} 4\n'
            "fill_sum 4.49\n"
            "fill_count 4\n"
        )

    def test_counter_named_total_not_doubled(self):
        reg = MetricsRegistry()
        reg.counter("frames_total").inc(2)
        assert "frames_total_total" not in reg.to_prom()
        assert "frames_total 2" in reg.to_prom()

    def test_empty_registry_exports_empty_document(self):
        assert MetricsRegistry().to_prom() == ""

    def test_write_prom(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        path = tmp_path / "metrics.prom"
        reg.write_prom(str(path))
        assert path.read_text() == reg.to_prom()


class TestMergeSnapshot:
    """Fleet aggregation: absorbing another registry's to_dict()."""

    def make(self, counter=0, gauge=0.0, observations=()):
        reg = MetricsRegistry()
        if counter:
            reg.counter("frames_total").inc(counter)
        if gauge:
            reg.gauge("open_sessions").set(gauge)
        if observations:
            h = reg.histogram("fanout", edges=[1, 10])
            for v in observations:
                h.observe(v)
        return reg

    def test_counters_add(self):
        reg = self.make(counter=3)
        reg.merge_snapshot(self.make(counter=4).to_dict())
        assert reg.counter("frames_total").value == 7

    def test_gauges_sum(self):
        reg = self.make(gauge=2.0)
        reg.merge_snapshot(self.make(gauge=5.0).to_dict())
        assert reg.gauge("open_sessions").value == 7.0

    def test_histograms_add_bucket_for_bucket(self):
        reg = self.make(observations=[0.5, 5.0])
        reg.merge_snapshot(self.make(observations=[5.0, 50.0]).to_dict())
        h = reg.histogram("fanout")
        assert h.buckets == [1, 2, 1]
        assert h.count == 4
        assert h.total == 60.5

    def test_unseen_metrics_created_from_snapshot(self):
        reg = MetricsRegistry()
        reg.merge_snapshot(
            self.make(counter=2, gauge=1.0, observations=[0.5]).to_dict()
        )
        assert reg.counter("frames_total").value == 2
        assert reg.gauge("open_sessions").value == 1.0
        assert reg.histogram("fanout").count == 1

    def test_mismatched_histogram_edges_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("fanout", edges=[1, 100])
        with pytest.raises(ValueError, match="edges"):
            reg.merge_snapshot(self.make(observations=[0.5]).to_dict())

    def test_from_snapshots_sums_many(self):
        snapshots = [self.make(counter=i).to_dict() for i in (1, 2, 3)]
        merged = MetricsRegistry.from_snapshots(snapshots)
        assert merged.counter("frames_total").value == 6

    def test_disjoint_counter_key_sets_union(self):
        # Fleet workers need not expose identical counters (e.g. only
        # one worker saw a decode error): the merge must union the key
        # sets, keeping each side's counts intact.
        left = MetricsRegistry()
        left.counter("frames_total").inc(3)
        left.counter("only_left_total").inc(1)
        right = MetricsRegistry()
        right.counter("frames_total").inc(4)
        right.counter("only_right_total").inc(9)
        left.merge_snapshot(right.to_dict())
        assert left.counter("frames_total").value == 7
        assert left.counter("only_left_total").value == 1
        assert left.counter("only_right_total").value == 9

    def test_disjoint_gauges_and_histograms_union(self):
        left = MetricsRegistry()
        left.gauge("only_left").set(2.0)
        right = MetricsRegistry()
        right.gauge("only_right").set(5.0)
        right.histogram("only_right_h", edges=[1.0]).observe(0.5)
        left.merge_snapshot(right.to_dict())
        assert left.gauge("only_left").value == 2.0
        assert left.gauge("only_right").value == 5.0
        assert left.histogram("only_right_h").count == 1

    def test_merge_survives_json_round_trip(self):
        snapshot = json.loads(
            json.dumps(self.make(counter=2, observations=[5.0]).to_dict())
        )
        reg = MetricsRegistry.from_snapshots([snapshot])
        assert reg.counter("frames_total").value == 2
        assert reg.histogram("fanout").count == 1
