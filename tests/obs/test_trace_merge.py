"""merge_traces: deterministic stitch of per-worker trace shards."""

from pathlib import Path

from repro.obs import merge_traces, read_trace_iter, read_trace_meta
from repro.obs.events import TRACE_SCHEMA_VERSION
from repro.obs.recorder import TraceRecorder


def write_shard(path, events, *, sim_end=None):
    """Write one schema-v2 shard from (t, type, fields) triples."""
    recorder = TraceRecorder()
    for t, type_, fields in events:
        recorder.emit(type_, t, **fields)
    if sim_end is not None:
        recorder.emit("sim_end", sim_end[0], **sim_end[1])
    recorder.write_jsonl(str(path))
    return str(path)


class TestMergeOrdering:
    def test_events_merge_in_time_order(self, tmp_path):
        a = write_shard(
            tmp_path / "a.jsonl",
            [(1.0, "contact", {"a": 1, "b": 2}),
             (3.0, "contact", {"a": 1, "b": 3})],
        )
        b = write_shard(
            tmp_path / "b.jsonl",
            [(2.0, "contact", {"a": 2, "b": 3})],
        )
        out = tmp_path / "merged.jsonl"
        written = merge_traces([a, b], str(out))
        events = list(read_trace_iter(str(out)))
        assert written == 3
        assert [e.t for e in events] == [1.0, 2.0, 3.0]

    def test_seq_reassigned_contiguously_from_zero(self, tmp_path):
        a = write_shard(
            tmp_path / "a.jsonl", [(1.0, "contact", {"a": 1, "b": 2})]
        )
        b = write_shard(
            tmp_path / "b.jsonl", [(0.5, "contact", {"a": 3, "b": 4})]
        )
        out = tmp_path / "merged.jsonl"
        merge_traces([a, b], str(out))
        events = list(read_trace_iter(str(out)))
        assert [e.seq for e in events] == list(range(len(events)))

    def test_worker_index_breaks_exact_ties(self, tmp_path):
        # Identical (t, seq) in both shards: shard order must decide.
        a = write_shard(
            tmp_path / "a.jsonl", [(1.0, "contact", {"a": 1, "b": 2})]
        )
        b = write_shard(
            tmp_path / "b.jsonl", [(1.0, "contact", {"a": 9, "b": 8})]
        )
        out = tmp_path / "merged.jsonl"
        merge_traces([a, b], str(out))
        events = list(read_trace_iter(str(out)))
        assert events[0].fields["a"] == 1
        assert events[1].fields["a"] == 9

    def test_merge_is_deterministic(self, tmp_path):
        shards = [
            write_shard(
                tmp_path / f"s{i}.jsonl",
                [(float(j), "contact", {"a": i, "b": j})
                 for j in range(5)],
            )
            for i in range(3)
        ]
        out1, out2 = tmp_path / "m1.jsonl", tmp_path / "m2.jsonl"
        merge_traces(shards, str(out1))
        merge_traces(shards, str(out2))
        assert out1.read_bytes() == out2.read_bytes()


class TestSimEndSynthesis:
    def test_shard_sim_ends_collapse_into_one(self, tmp_path):
        a = write_shard(
            tmp_path / "a.jsonl",
            [(1.0, "contact", {"a": 1, "b": 2})],
            sim_end=(5.0, {"contacts": 10, "messages": 3}),
        )
        b = write_shard(
            tmp_path / "b.jsonl",
            [(2.0, "contact", {"a": 2, "b": 3})],
            sim_end=(7.0, {"contacts": 4, "messages": 2}),
        )
        out = tmp_path / "merged.jsonl"
        merge_traces([a, b], str(out))
        events = list(read_trace_iter(str(out)))
        ends = [e for e in events if e.type == "sim_end"]
        assert len(ends) == 1
        end = ends[0]
        assert end is events[-1]
        assert end.t == 7.0
        assert end.fields["contacts"] == 14
        assert end.fields["messages"] == 5

    def test_no_sim_end_synthesized_when_shards_have_none(self, tmp_path):
        a = write_shard(
            tmp_path / "a.jsonl", [(1.0, "contact", {"a": 1, "b": 2})]
        )
        out = tmp_path / "merged.jsonl"
        merge_traces([a], str(out))
        events = list(read_trace_iter(str(out)))
        assert all(e.type != "sim_end" for e in events)


class TestMergeHeader:
    def test_merged_trace_has_single_schema_v2_meta(self, tmp_path):
        a = write_shard(
            tmp_path / "a.jsonl", [(1.0, "contact", {"a": 1, "b": 2})]
        )
        b = write_shard(
            tmp_path / "b.jsonl", [(2.0, "contact", {"a": 3, "b": 4})]
        )
        out = tmp_path / "merged.jsonl"
        merge_traces([a, b], str(out))
        meta = read_trace_meta(str(out))
        assert meta["schema"] == TRACE_SCHEMA_VERSION
        with open(out) as fh:
            metas = [line for line in fh if '"trace_meta"' in line]
        assert len(metas) == 1

    def test_single_shard_merge_preserves_events(self, tmp_path):
        a = write_shard(
            tmp_path / "a.jsonl",
            [(1.0, "contact", {"a": 1, "b": 2}),
             (2.0, "contact", {"a": 1, "b": 3})],
            sim_end=(9.0, {"contacts": 2, "messages": 0}),
        )
        out = tmp_path / "merged.jsonl"
        written = merge_traces([a], str(out))
        assert written == 3
        events = list(read_trace_iter(str(out)))
        assert [e.type for e in events] == ["contact", "contact", "sim_end"]

    def test_empty_shard_list_yields_empty_trace(self, tmp_path):
        out = tmp_path / "merged.jsonl"
        written = merge_traces([], str(out))
        assert written == 0
        assert list(read_trace_iter(str(out))) == []


class TestMergeEdgeCases:
    """Degenerate shard shapes a real fleet can produce."""

    def test_empty_shard_among_populated_ones(self, tmp_path):
        # A worker that served no traffic writes a meta-only shard; it
        # must not perturb the merge of its busier siblings.
        a = write_shard(
            tmp_path / "a.jsonl",
            [(1.0, "contact", {"a": 1, "b": 2})],
            sim_end=(5.0, {"contacts": 1}),
        )
        b = write_shard(tmp_path / "b.jsonl", [])
        out = tmp_path / "merged.jsonl"
        written = merge_traces([a, b], str(out))
        assert written == 2
        events = list(read_trace_iter(str(out)))
        assert [e.type for e in events] == ["contact", "sim_end"]

    def test_zero_byte_shard_tolerated(self, tmp_path):
        a = write_shard(
            tmp_path / "a.jsonl", [(1.0, "contact", {"a": 1, "b": 2})]
        )
        hollow = tmp_path / "hollow.jsonl"
        hollow.write_text("")
        out = tmp_path / "merged.jsonl"
        assert merge_traces([a, str(hollow)], str(out)) == 1

    def test_sim_end_only_shard_still_sums_into_anchor(self, tmp_path):
        # An idle worker's shard is just its sim_end accounting; the
        # merged anchor must still absorb its counters.
        a = write_shard(
            tmp_path / "a.jsonl",
            [(1.0, "contact", {"a": 1, "b": 2})],
            sim_end=(5.0, {"contacts": 7}),
        )
        b = write_shard(
            tmp_path / "b.jsonl", [], sim_end=(3.0, {"contacts": 2})
        )
        out = tmp_path / "merged.jsonl"
        merge_traces([a, b], str(out))
        events = list(read_trace_iter(str(out)))
        ends = [e for e in events if e.type == "sim_end"]
        assert len(ends) == 1
        assert ends[0].t == 5.0
        assert ends[0].fields["contacts"] == 9

    def test_single_worker_merge_is_byte_identical(self, tmp_path):
        # workers=1 passes through the merge path; the merged file must
        # be indistinguishable from the shard the worker wrote.
        a = write_shard(
            tmp_path / "a.jsonl",
            [(1.0, "contact", {"a": 1, "b": 2}),
             (2.0, "forward",
              {"msg": 0, "kind": "direct", "src": 1, "dst": 2})],
            sim_end=(9.0, {"contacts": 1, "messages": 1}),
        )
        out = tmp_path / "merged.jsonl"
        merge_traces([a], str(out))
        assert out.read_bytes() == Path(a).read_bytes()
