"""Unit tests for :mod:`repro.obs.recorder`."""

import io
import json

import pytest

from repro.obs import (
    EVENT_TYPES,
    NULL_RECORDER,
    NullRecorder,
    TraceRecorder,
    file_trace_digest,
    read_trace,
    read_trace_iter,
    read_trace_meta,
    trace_digest,
)
from repro.obs.events import trace_meta_line


class TestNullRecorder:
    def test_disabled_flag_is_class_attribute(self):
        # Hot paths guard on `recorder.enabled`; the null recorder must
        # answer False without any instance state.
        assert NullRecorder.enabled is False
        assert NULL_RECORDER.enabled is False

    def test_emit_is_a_no_op(self):
        assert NULL_RECORDER.emit("contact", t=0.0, a=1, b=2) is None


class TestTraceRecorder:
    def test_enabled(self):
        assert TraceRecorder().enabled is True

    def test_sequence_numbers_are_dense(self):
        rec = TraceRecorder()
        rec.emit("contact", t=1.0, a=0, b=1)
        rec.emit("forward", t=2.0, msg=0, src=0, dst=1)
        rec.emit("delivery", t=2.0, msg=0, node=1, intended=True)
        assert [e.seq for e in rec.events] == [0, 1, 2]
        assert len(rec) == 3

    def test_events_of_filters_by_type(self):
        rec = TraceRecorder()
        rec.emit("contact", t=1.0, a=0, b=1)
        rec.emit("forward", t=2.0, msg=0, src=0, dst=1)
        rec.emit("contact", t=3.0, a=1, b=2)
        assert [e.t for e in rec.events_of("contact")] == [1.0, 3.0]
        with pytest.raises(ValueError, match="unknown event type"):
            rec.events_of("nope")

    def test_counts_include_zero_types(self):
        rec = TraceRecorder()
        rec.emit("contact", t=1.0, a=0, b=1)
        counts = rec.counts()
        assert set(counts) == set(EVENT_TYPES)
        assert counts["contact"] == 1
        assert counts["m_merge"] == 0

    def test_jsonl_roundtrip_through_file(self, tmp_path):
        rec = TraceRecorder()
        rec.emit("contact", t=1.0, a=0, b=1, duration=60.0)
        rec.emit("broker_role", t=2.0, node=1, action="promote", by=0)
        path = tmp_path / "trace.jsonl"
        assert rec.write_jsonl(str(path)) == 2
        events = list(read_trace(str(path)))
        assert events == rec.events
        only_roles = list(read_trace(str(path), type="broker_role"))
        assert [e.type for e in only_roles] == ["broker_role"]

    def test_streaming_sink_matches_buffered_encoding(self):
        # A sink receives the schema meta header up front, then the
        # same event bytes that to_jsonl() would buffer.
        sink = io.StringIO()
        rec = TraceRecorder(sink=sink)
        rec.emit("contact", t=1.0, a=0, b=1)
        rec.emit("decay_tick", t=5.0, node=0, dt=4.0)
        assert sink.getvalue() == trace_meta_line() + "\n" + rec.to_jsonl()

    def test_digest_depends_on_content(self):
        a, b = TraceRecorder(), TraceRecorder()
        a.emit("contact", t=1.0, a=0, b=1)
        b.emit("contact", t=1.0, a=0, b=1)
        assert a.digest() == b.digest()
        b.emit("contact", t=2.0, a=0, b=2)
        assert a.digest() != b.digest()

    def test_digest_is_not_line_concatenation_ambiguous(self):
        # Two events must never hash like one longer event.
        one = TraceRecorder()
        one.emit("contact", t=1.0, a=0, b=1)
        assert trace_digest(one.events) == one.digest()
        empty = TraceRecorder()
        assert empty.digest() != one.digest()

    def test_jsonl_lines_parse_individually(self):
        rec = TraceRecorder()
        rec.emit("forward", t=1.0, msg=0, src=0, dst=1, kind="direct", size=100)
        for line in rec.to_jsonl().splitlines():
            record = json.loads(line)
            assert record["type"] in EVENT_TYPES


class TestTraceFiles:
    """Schema header, streaming readers, and backward compatibility."""

    def _write(self, tmp_path, name="trace.jsonl"):
        rec = TraceRecorder()
        rec.emit("contact", t=1.0, a=0, b=1)
        rec.emit("forward", t=2.0, msg=0, src=0, dst=1, kind="direct")
        rec.emit("delivery", t=2.0, msg=0, node=1, intended=True)
        path = tmp_path / name
        rec.write_jsonl(str(path))
        return rec, path

    def test_written_file_starts_with_meta_header(self, tmp_path):
        rec, path = self._write(tmp_path)
        first = path.read_text().splitlines()[0]
        assert first == trace_meta_line()
        assert read_trace_meta(str(path)) == json.loads(trace_meta_line())

    def test_read_trace_iter_is_lazy_and_skips_meta(self, tmp_path):
        rec, path = self._write(tmp_path)
        iterator = read_trace_iter(str(path))
        assert iter(iterator) is iterator  # a generator, not a list
        assert list(iterator) == rec.events

    def test_read_trace_builds_on_iterator(self, tmp_path):
        rec, path = self._write(tmp_path)
        assert list(read_trace(str(path))) == rec.events
        assert [e.type for e in read_trace(str(path), type="forward")] == [
            "forward"
        ]

    def test_file_digest_matches_in_memory_digest(self, tmp_path):
        # The digest covers events only — the meta header must not
        # perturb it, so schema bumps alone never break golden pins.
        rec, path = self._write(tmp_path)
        assert file_trace_digest(str(path)) == rec.digest()

    def test_headerless_schema1_trace_still_parses(self, tmp_path):
        # Traces written before the schema header existed have no meta
        # line; readers must treat them as schema 1 and parse fully.
        rec, path = self._write(tmp_path)
        old = tmp_path / "old.jsonl"
        old.write_text(rec.to_jsonl())
        assert read_trace_meta(str(old)) == {"schema": 1}
        assert list(read_trace_iter(str(old))) == rec.events
        assert file_trace_digest(str(old)) == rec.digest()

    def test_empty_file_is_schema1_and_empty(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert read_trace_meta(str(path)) == {"schema": 1}
        assert list(read_trace_iter(str(path))) == []
