"""End-to-end CLI acceptance for ``--trace-out`` / ``--metrics-out``.

The deliberately tiny 32-bit filters make relay-filter false positives
(and hence ``false_injection`` events) occur, so one seeded CLI run
exercises the full eight-type event vocabulary.
"""

import json

from repro.cli import main
from repro.obs import EVENT_TYPES, read_trace

RUN_ARGS = [
    "run",
    "--trace", "haggle",
    "--scale", "0.01",
    "--seed", "3",
    "--protocol", "B-SUB",
    "--ttl-min", "120",
    "--num-bits", "32",
    "--num-hashes", "2",
]


class TestCliTraceOutput:
    def test_traced_run_emits_all_event_types(self, tmp_path, capsys):
        trace_path = tmp_path / "run.trace.jsonl"
        metrics_path = tmp_path / "run.metrics.json"
        code = main(
            RUN_ARGS
            + ["--trace-out", str(trace_path), "--metrics-out", str(metrics_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Event trace" in out
        assert "Phase timings" in out
        assert "Metrics registry" in out

        # The JSONL file opens with the schema meta header, then valid
        # line-delimited JSON covering every protocol event type (fault
        # events need --faults), with dense sequence numbers.
        fault_types = {
            "frame_dropped", "frame_truncated",
            "node_crashed", "node_recovered",
        }
        lines = trace_path.read_text().splitlines()
        assert json.loads(lines[0]) == {"schema": 2, "type": "trace_meta"}
        seen = set()
        for i, line in enumerate(lines[1:]):
            record = json.loads(line)
            assert record["seq"] == i
            seen.add(record["type"])
        assert seen == set(EVENT_TYPES) - fault_types
        assert len(list(read_trace(str(trace_path)))) == i + 1

        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]["bsub_deliveries_total"] > 0
        assert metrics["counters"]["bsub_m_merge_total"] > 0
        assert set(metrics) == {"counters", "gauges", "histograms"}

    def test_summary_table_identical_without_flags(self, tmp_path, capsys):
        # With observability off (no flags) the CLI output must be
        # byte-identical to the head of the instrumented run's output:
        # instrumentation only appends, never perturbs.
        code = main(RUN_ARGS)
        plain = capsys.readouterr().out
        assert code == 0

        trace_path = tmp_path / "run.trace.jsonl"
        code = main(RUN_ARGS + ["--trace-out", str(trace_path)])
        traced = capsys.readouterr().out
        assert code == 0
        assert traced.startswith(plain)
        assert trace_path.exists()
