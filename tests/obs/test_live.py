"""Online observability: LiveTailer parity, tailing, and the dashboard.

The central claim mirrors the offline analyzer's: the live tailer's
running totals equal ``analyze_trace`` on the bytes seen so far — over
*any* event prefix, not just at end of stream — while holding only the
live message set in memory.  The follow/merge sources and the watch/
dash surfaces are exercised against both a finished trace and a file
that grows underneath the reader.
"""

import itertools
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.obs import (
    LiveTailer,
    MetricsRegistry,
    ParityError,
    RollingWindow,
    TraceEvent,
    analyze_trace,
    follow_merged_traces,
    format_watch_table,
    merge_traces,
    offline_parity_counters,
    read_trace_iter,
    replay_trace_iter,
)
from repro.obs.dash import DashboardServer
from repro.obs.recorder import TraceRecorder


@pytest.fixture(scope="module")
def mini_trace(mini_fig7, tmp_path_factory):
    """(trace path, offline analysis) of the instrumented mini run."""
    obs, _result = mini_fig7
    path = tmp_path_factory.mktemp("live") / "mini.trace.jsonl"
    obs.tracer.write_jsonl(str(path))
    return str(path), analyze_trace(str(path))


def feed_all(tailer, path, limit=None):
    events = read_trace_iter(path)
    if limit is not None:
        events = itertools.islice(events, limit)
    count = 0
    for event in events:
        tailer.feed(event)
        count += 1
    return count


def write_shard(path, events, *, sim_end=None):
    recorder = TraceRecorder()
    for t, type_, fields in events:
        recorder.emit(type_, t, **fields)
    if sim_end is not None:
        recorder.emit("sim_end", sim_end[0], **sim_end[1])
    recorder.write_jsonl(str(path))
    return str(path)


class TestRollingWindow:
    def test_prunes_by_time_horizon(self):
        window = RollingWindow(horizon_s=10.0)
        window.add(0.0, 1.0)
        window.add(5.0, 2.0)
        window.add(20.0, 3.0)  # evicts both earlier samples
        assert window.count == 1
        assert window.sum() == 3.0

    def test_hard_cap_bounds_memory(self):
        window = RollingWindow(horizon_s=1e9, max_samples=100)
        for i in range(10_000):
            window.add(float(i), 1.0)
        assert window.count == 100

    def test_percentile_nearest_rank(self):
        window = RollingWindow(horizon_s=1e9)
        for v in range(1, 101):  # 1..100
            window.add(0.0, float(v))
        assert window.percentile(50) == 50.0
        assert window.percentile(95) == 95.0
        assert window.percentile(100) == 100.0
        assert window.percentile(0) == 1.0

    def test_empty_window_is_none(self):
        window = RollingWindow()
        assert window.percentile(50) is None
        assert window.mean() is None


class TestParityTotals:
    def test_totals_equal_offline_analyzer(self, mini_trace):
        path, analysis = mini_trace
        tailer = LiveTailer()
        feed_all(tailer, path)
        assert tailer.parity_counters() == offline_parity_counters(analysis)
        assert tailer.check_parity(offline_parity_counters(analysis)) == []

    def test_attribution_matches_offline(self, mini_trace):
        path, analysis = mini_trace
        tailer = LiveTailer()
        feed_all(tailer, path)
        live = tailer.totals()["attribution"]
        for cause, count in live.items():
            assert analysis.attribution[cause] == count

    def test_parity_holds_on_any_prefix(self, mini_trace):
        # The load-bearing invariant: parity is not an end-of-stream
        # accident but holds mid-flight, which is what lets the serve
        # gate checkpoint a *growing* trace.
        path, _analysis = mini_trace
        total = sum(1 for _ in read_trace_iter(path))
        for fraction in (0.1, 0.5, 0.9):
            tailer = LiveTailer()
            consumed = feed_all(tailer, path, limit=int(total * fraction))
            prefix = itertools.islice(read_trace_iter(path), consumed)
            offline = offline_parity_counters(
                analyze_trace(prefix, trace_schema=2)
            )
            assert tailer.parity_counters() == offline

    def test_verify_parity_passes_and_counts(self, mini_trace):
        path, _analysis = mini_trace
        tailer = LiveTailer(source_paths=[path])
        feed_all(tailer, path, limit=5_000)
        offline = tailer.verify_parity()
        assert set(offline) == {
            "messages_created", "intended_pairs", "forwards_direct",
            "deliveries_total", "deliveries_intended", "deliveries_false",
        }
        assert tailer.parity_checks == 1
        assert tailer.parity_failures == 0

    def test_verify_parity_raises_on_divergence(self, mini_trace):
        path, _analysis = mini_trace
        tailer = LiveTailer(source_paths=[path])
        feed_all(tailer, path, limit=1_000)
        tailer.deliveries_total += 1  # inject a divergence
        with pytest.raises(ParityError, match="deliveries_total"):
            tailer.verify_parity()
        assert tailer.parity_failures == 1

    def test_verify_parity_without_paths_rejected(self):
        with pytest.raises(ValueError, match="source_paths"):
            LiveTailer().verify_parity()

    def test_auto_checkpoints_every_n_events(self, mini_trace):
        path, _analysis = mini_trace
        tailer = LiveTailer(source_paths=[path], checkpoint_every=1_000)
        consumed = feed_all(tailer, path, limit=3_500)
        assert tailer.parity_checks == consumed // 1_000
        assert tailer.parity_failures == 0

    def test_registry_mirror_counts_at_feed_time(self, mini_trace):
        path, analysis = mini_trace
        registry = MetricsRegistry()
        tailer = LiveTailer(registry=registry)
        consumed = feed_all(tailer, path)
        offline = offline_parity_counters(analysis)
        assert registry.counter("live_events_total").value == consumed
        assert (
            registry.counter("live_deliveries_total").value
            == offline["deliveries_total"]
        )
        assert (
            registry.counter("live_deliveries_false_total").value
            == offline["deliveries_false"]
        )
        tailer.refresh_registry()
        assert (
            registry.gauge("live_completeness").value
            == tailer.totals()["completeness"]
        )
        prom = registry.to_prom()
        assert "live_events_total" in prom
        assert "live_window_delay_p95_s" in prom


class TestBoundedMemory:
    def test_live_set_stays_small_on_150k_event_stream(self):
        # 50k messages x (create, forward, delivery) = 150k events with
        # a 10 s TTL: the builder's expiry heap must keep the live set
        # near the TTL horizon, not near the message count.
        tailer = LiveTailer()
        seq = 0

        def emit(t, type_, **fields):
            nonlocal seq
            tailer.feed(TraceEvent(seq=seq, t=t, type=type_, fields=fields))
            seq += 1

        for i in range(50_000):
            t = float(i)
            emit(t, "create", msg=i, node=0, ttl=10.0, num_intended=1)
            emit(t + 0.4, "forward", msg=i, kind="direct", src=0, dst=1)
            emit(t + 0.5, "delivery", msg=i, node=1, intended=True)
        totals = tailer.totals()
        assert totals["events"] == 150_000
        assert totals["messages_created"] == 50_000
        assert totals["deliveries"]["intended"] == 50_000
        assert totals["peak_live_messages"] < 50
        # Rolling windows are capped too, regardless of horizon.
        assert len(tailer.delay_window) <= 4096


class TestFollowMode:
    def test_follow_reads_a_growing_file(self, tmp_path):
        # Write the head, start following, then append the tail from
        # another thread — split mid-line to exercise the partial-line
        # buffer.
        full = tmp_path / "full.jsonl"
        write_shard(
            full,
            [(float(i), "contact", {"a": i, "b": i + 1}) for i in range(6)],
            sim_end=(9.0, {"contacts": 6}),
        )
        blob = full.read_bytes()
        cut = blob.find(b'"contact"', len(blob) // 2)  # mid-record
        assert cut > 0
        growing = tmp_path / "growing.jsonl"
        growing.write_bytes(blob[:cut])

        def append_rest():
            time.sleep(0.15)
            with open(growing, "ab") as fh:
                fh.write(blob[cut:])

        writer = threading.Thread(target=append_rest)
        writer.start()
        events = list(
            read_trace_iter(str(growing), follow=True, poll_interval_s=0.02)
        )
        writer.join()
        assert [e.type for e in events] == ["contact"] * 6 + ["sim_end"]
        assert [e.t for e in events][:6] == [float(i) for i in range(6)]

    def test_follow_terminates_at_sim_end(self, tmp_path):
        path = write_shard(
            tmp_path / "t.jsonl",
            [(1.0, "contact", {"a": 1, "b": 2})],
            sim_end=(2.0, {"contacts": 1}),
        )
        events = list(read_trace_iter(path, follow=True, poll_interval_s=0.01))
        assert events[-1].type == "sim_end"

    def test_follow_should_stop_without_sim_end(self, tmp_path):
        path = write_shard(
            tmp_path / "t.jsonl", [(1.0, "contact", {"a": 1, "b": 2})]
        )
        stop = threading.Event()
        stop.set()
        events = list(
            read_trace_iter(
                path, follow=True, poll_interval_s=0.01,
                should_stop=stop.is_set,
            )
        )
        assert [e.type for e in events] == ["contact"]


class TestFollowMergedTraces:
    def shards(self, tmp_path):
        a = write_shard(
            tmp_path / "a.jsonl",
            [(1.0, "contact", {"a": 1, "b": 2}),
             (3.0, "contact", {"a": 1, "b": 3})],
            sim_end=(5.0, {"contacts": 2}),
        )
        b = write_shard(
            tmp_path / "b.jsonl",
            [(2.0, "contact", {"a": 2, "b": 3})],
            sim_end=(6.0, {"contacts": 1}),
        )
        return [a, b]

    def test_quiescent_order_matches_offline_merge(self, tmp_path):
        paths = self.shards(tmp_path)
        followed = [
            (event.t, event.type)
            for _shard, event in follow_merged_traces(paths, follow=False)
            if event.type != "sim_end"
        ]
        out = tmp_path / "merged.jsonl"
        merge_traces(paths, str(out))
        merged = [
            (event.t, event.type)
            for event in read_trace_iter(str(out))
            if event.type != "sim_end"
        ]
        assert followed == merged

    def test_each_shard_yields_its_own_sim_end(self, tmp_path):
        paths = self.shards(tmp_path)
        ends = [
            (shard, event.t)
            for shard, event in follow_merged_traces(paths, follow=False)
            if event.type == "sim_end"
        ]
        assert sorted(ends) == [(0, 5.0), (1, 6.0)]

    def test_single_shard_passthrough(self, tmp_path):
        [a, _b] = self.shards(tmp_path)
        followed = [e.to_json() for _s, e in
                    follow_merged_traces([a], follow=False)]
        direct = [e.to_json() for e in read_trace_iter(a)]
        assert followed == direct

    def test_empty_and_missing_shards(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        missing = str(tmp_path / "never_created.jsonl")
        assert list(
            follow_merged_traces([str(empty), missing], follow=False)
        ) == []

    def test_should_stop_drains_buffered_heads_in_order(self, tmp_path):
        paths = self.shards(tmp_path)
        stop = threading.Event()
        stop.set()
        events = [
            event.t
            for _shard, event in follow_merged_traces(
                paths, follow=True, poll_interval_s=0.01,
                should_stop=stop.is_set,
            )
        ]
        assert events == sorted(events)

    def test_live_growth_feeds_tailer_with_parity(self, tmp_path):
        # Two shards written incrementally while a follower drives a
        # LiveTailer: totals at the end must equal the offline analyzer
        # over the concatenated shards.
        recorders = [TraceRecorder(), TraceRecorder()]
        events = [
            (0, "create", 1.0, {"msg": 0, "node": 0, "num_intended": 1}),
            (1, "create", 1.5, {"msg": 1, "node": 1, "num_intended": 1}),
            (0, "forward", 2.0,
             {"msg": 0, "kind": "direct", "src": 0, "dst": 2}),
            (1, "delivery", 2.5, {"msg": 1, "node": 3, "intended": True}),
            (0, "delivery", 3.0, {"msg": 0, "node": 2, "intended": True}),
        ]
        paths = [str(tmp_path / "w0.jsonl"), str(tmp_path / "w1.jsonl")]

        def writer():
            for shard, type_, t, fields in events:
                recorders[shard].emit(type_, t, **fields)
                recorders[shard].write_jsonl(paths[shard])
                time.sleep(0.05)
            for shard, recorder in enumerate(recorders):
                recorder.emit("sim_end", 9.0, messages=1)
                recorder.write_jsonl(paths[shard])

        thread = threading.Thread(target=writer)
        thread.start()
        tailer = LiveTailer(source_paths=paths)
        for shard, event in follow_merged_traces(
            paths, follow=True, poll_interval_s=0.02
        ):
            tailer.feed(event, shard=shard)
        thread.join()
        assert tailer.verify_parity() == tailer.parity_counters()
        assert tailer.parity_counters()["messages_created"] == 2
        assert tailer.parity_counters()["deliveries_intended"] == 2
        assert tailer.sim_ends_seen == 2


class TestReplay:
    def test_replay_preserves_events_and_paces_sleeps(self, tmp_path):
        path = write_shard(
            tmp_path / "t.jsonl",
            [(0.0, "contact", {"a": 1, "b": 2}),
             (60.0, "contact", {"a": 1, "b": 3})],
            sim_end=(120.0, {"contacts": 2}),
        )
        sleeps = []
        events = list(
            replay_trace_iter(path, speed=60.0, sleep=sleeps.append)
        )
        assert [e.t for e in events] == [0.0, 60.0, 120.0]
        # 60 trace seconds at speed 60 = 1 wall second per gap; the
        # injected sleep never advances the clock, so the anchored
        # pacing asks for the *cumulative* due times (1 s, then 2 s).
        assert len(sleeps) == 2
        assert 0.5 < sleeps[0] <= 1.0
        assert 1.5 < sleeps[1] <= 2.0

    def test_replay_caps_individual_sleeps(self, tmp_path):
        path = write_shard(
            tmp_path / "t.jsonl",
            [(0.0, "contact", {"a": 1, "b": 2}),
             (10_000.0, "contact", {"a": 1, "b": 3})],
        )
        sleeps = []
        list(replay_trace_iter(path, speed=1.0, sleep=sleeps.append,
                               max_sleep_s=2.0))
        assert sleeps and max(sleeps) <= 2.0

    def test_replay_rejects_nonpositive_speed(self, tmp_path):
        path = write_shard(
            tmp_path / "t.jsonl", [(0.0, "contact", {"a": 1, "b": 2})]
        )
        with pytest.raises(ValueError, match="speed"):
            list(replay_trace_iter(path, speed=0.0))


class TestRecorderBus:
    def test_subscribe_receives_emitted_events(self):
        recorder = TraceRecorder()
        seen = []
        recorder.subscribe(seen.append)
        recorder.emit("contact", 1.0, a=1, b=2)
        assert [e.type for e in seen] == ["contact"]

    def test_unsubscribe_stops_delivery_and_is_idempotent(self):
        recorder = TraceRecorder()
        seen = []
        recorder.subscribe(seen.append)
        recorder.unsubscribe(seen.append)
        recorder.unsubscribe(seen.append)  # no-op, no raise
        recorder.emit("contact", 1.0, a=1, b=2)
        assert seen == []

    def test_duplicate_subscribe_delivers_once(self):
        recorder = TraceRecorder()
        seen = []
        recorder.subscribe(seen.append)
        recorder.subscribe(seen.append)
        recorder.emit("contact", 1.0, a=1, b=2)
        assert len(seen) == 1


class TestWatchCli:
    def test_watch_once_renders_table_with_parity(self, mini_trace, capsys):
        path, analysis = mini_trace
        rc = main(["watch", path, "--once", "--verify"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "B-SUB live observability" in out
        offline = offline_parity_counters(analysis)
        assert str(offline["messages_created"]) in out
        assert "parity checks (failures)" in out
        assert "1 (0)" in out  # the --verify checkpoint ran and passed

    def test_watch_replay_mode(self, tmp_path, capsys):
        path = write_shard(
            tmp_path / "t.jsonl",
            [(0.0, "create", {"msg": 0, "node": 0, "num_intended": 1}),
             (1.0, "delivery", {"msg": 0, "node": 1, "intended": True})],
            sim_end=(2.0, {"messages": 1}),
        )
        rc = main(["watch", path, "--once", "--replay", "1000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "messages created" in out

    def test_format_watch_table_handles_empty_stream(self):
        table = format_watch_table(LiveTailer().snapshot())
        assert "events seen" in table
        assert "0" in table


class TestDashboard:
    def test_endpoints_serve_live_state(self, mini_trace):
        path, analysis = mini_trace
        registry = MetricsRegistry()
        tailer = LiveTailer(registry=registry)
        dash = DashboardServer(tailer, port=0).start()
        try:
            feeder = dash.feed_from(read_trace_iter(path))
            feeder.join(timeout=60.0)
            assert not feeder.is_alive()

            def get(route):
                with urllib.request.urlopen(dash.url + route) as reply:
                    return reply.status, reply.read()

            status, body = get("/data.json")
            assert status == 200
            snapshot = json.loads(body)
            offline = offline_parity_counters(analysis)
            assert (
                snapshot["totals"]["messages_created"]
                == offline["messages_created"]
            )
            assert (
                snapshot["totals"]["deliveries"]["total"]
                == offline["deliveries_total"]
            )
            status, body = get("/")
            assert status == 200
            assert b"data.json" in body
            status, body = get("/metrics")
            assert status == 200
            assert b"live_events_total" in body
            status, body = get("/healthz")
            assert status == 200
        finally:
            dash.stop()

    def test_unknown_route_is_404(self, tmp_path):
        dash = DashboardServer(LiveTailer(), port=0).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(dash.url + "/nope")
            assert excinfo.value.code == 404
        finally:
            dash.stop()

    def test_dash_cli_offline(self, tmp_path, capsys):
        path = write_shard(
            tmp_path / "t.jsonl",
            [(0.0, "create", {"msg": 0, "node": 0, "num_intended": 1}),
             (1.0, "delivery", {"msg": 0, "node": 1, "intended": True})],
            sim_end=(2.0, {"messages": 1}),
        )
        rc = main([
            "dash", path, "--dash-port", "0", "--duration", "0.3",
        ])
        captured = capsys.readouterr()
        assert rc == 0
        assert "dashboard: http://" in captured.err
        assert "B-SUB live observability" in captured.out
