"""Golden-trace regression tests.

Pin SHA-256 digests of the canonical JSONL event trace (and of the
metrics-registry JSON) produced by seeded mini-runs.  Any behavioural
drift in the protocol — an extra merge, a reordered forward, a changed
counter value — changes the digest and fails these tests.

If a digest changes because of an *intentional* protocol or
instrumentation change, re-derive the constants below by running the
scenario (see ``conftest.MINI_FIG7_TRACE`` / ``MINI_FIG7_CONFIG``) and
pasting the new ``obs.tracer.digest()`` value; mention the re-pin in
the commit message.
"""

import hashlib
import json

from repro.api import ExperimentSpec, run
from repro.experiments import ExperimentConfig
from repro.obs import EVENT_TYPES, Observability, read_trace
from repro.traces import haggle_like

from .conftest import run_mini_fig7

# Mini Fig. 7 (Haggle-style run, 32-bit filters): conftest scenario.
# Re-pinned for trace schema 2 (create/sim_end lifecycle events plus
# match/cause provenance fields); every pre-existing protocol event
# count is unchanged from the schema-1 pin, and the registry digest is
# byte-identical — the schema bump only *added* information.
MINI_FIG7_TRACE_DIGEST = (
    "1db980a5f9dadc271604ec728eb20692ac4bcde79785a7bd392f1dbde3a9ed7f"
)
MINI_FIG7_REGISTRY_DIGEST = (
    "8f99655406707da01692e0f5e1de0b4b33ca93d430a11ae9b684391b43c6c703"
)
MINI_FIG7_EVENT_COUNTS = {
    "create": 80946,
    "contact": 719,
    "a_merge": 1238,
    "m_merge": 1040,
    "decay_tick": 1436,
    "forward": 9943,
    "delivery": 4078,
    "false_injection": 142,
    "broker_role": 70,
    # Fault events exist in the vocabulary but never fire without an
    # enabled FaultSpec — zeros are part of the golden identity.
    "frame_dropped": 0,
    "frame_truncated": 0,
    "node_crashed": 0,
    "node_recovered": 0,
    "sim_end": 1,
}

#: The event types a *fault-free* run must exercise.
PROTOCOL_EVENT_TYPES = tuple(
    t for t in EVENT_TYPES
    if t not in ("frame_dropped", "frame_truncated",
                 "node_crashed", "node_recovered")
)

# Mini Fig. 9 (DF sweep at two decay factors, same trace/geometry).
MINI_FIG9_TRACE = dict(scale=0.01, seed=5)
MINI_FIG9_DIGESTS = {
    0.1: "5b7394219b26a3aaf85c96d0a0e7b9bdf1ecfc1a6bc82bd563045cf555b98c76",
    2.0: "01c8dc29ee1a6443a7c8d59e8763f9e2ae1cfe76eaed3cf1bbd167645aa377ba",
}


class TestMiniFig7Golden:
    def test_trace_digest_pinned(self, mini_fig7):
        obs, _ = mini_fig7
        assert obs.tracer.digest() == MINI_FIG7_TRACE_DIGEST

    def test_event_counts_pinned(self, mini_fig7):
        obs, _ = mini_fig7
        assert obs.tracer.counts() == MINI_FIG7_EVENT_COUNTS

    def test_all_protocol_event_types_occur(self, mini_fig7):
        obs, _ = mini_fig7
        counts = obs.tracer.counts()
        assert all(counts[t] > 0 for t in PROTOCOL_EVENT_TYPES), counts
        # Fault-free runs must never emit fault events.
        assert all(
            counts[t] == 0
            for t in EVENT_TYPES if t not in PROTOCOL_EVENT_TYPES
        ), counts

    def test_registry_digest_pinned(self, mini_fig7):
        obs, _ = mini_fig7
        digest = hashlib.sha256(obs.registry.to_json().encode()).hexdigest()
        assert digest == MINI_FIG7_REGISTRY_DIGEST

    def test_same_seed_reproduces_trace_exactly(self, mini_fig7):
        obs, _ = mini_fig7
        repeat = Observability.enabled()
        run_mini_fig7(repeat)
        assert repeat.tracer.digest() == obs.tracer.digest()
        assert repeat.registry.to_json() == obs.registry.to_json()

    def test_trace_survives_jsonl_roundtrip(self, mini_fig7, tmp_path):
        obs, _ = mini_fig7
        path = tmp_path / "mini_fig7.jsonl"
        count = obs.tracer.write_jsonl(str(path))
        assert count == len(obs.tracer.events)
        events = list(read_trace(str(path)))
        assert events == obs.tracer.events
        # The first line is the schema meta header; every following
        # line is valid, canonical, self-describing JSON.
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["type"] == "trace_meta"
        for line in lines[1:]:
            record = json.loads(line)
            assert record["type"] in EVENT_TYPES
            assert record["seq"] >= 0

    def test_event_times_monotone_per_sequence(self, mini_fig7):
        # seq is emit order; simulation time may only move forward
        # between contacts, and every protocol event carries the time
        # of its enclosing contact.
        obs, _ = mini_fig7
        contact_times = [e.t for e in obs.tracer.events_of("contact")]
        assert contact_times == sorted(contact_times)


class TestMiniFig9Golden:
    def test_df_sweep_digests_pinned(self):
        trace = haggle_like(**MINI_FIG9_TRACE)
        for df, expected in MINI_FIG9_DIGESTS.items():
            config = ExperimentConfig(
                ttl_min=120.0,
                min_rate_per_s=1 / 1800.0,
                num_bits=32,
                num_hashes=2,
                decay_factor_per_min=df,
            )
            obs = Observability.enabled()
            run(trace, ExperimentSpec.from_config(config), obs=obs)
            assert obs.tracer.digest() == expected, f"DF={df}"
