"""Tests for the attribution → tuning feedback bridge (obs.feedback)."""

import json
from pathlib import Path

import pytest

from repro.core import HashFamily
from repro.obs import (
    AttributionFeedback,
    feedback_from_analysis,
    plan_retouch_from_analysis,
)

DATA = Path(__file__).parent / "data"
FAMILY = HashFamily(4, 256)


@pytest.fixture(scope="module")
def mini_fig7_doc():
    with open(DATA / "mini_fig7_analysis.json") as fh:
        return json.load(fh)


class TestAttributionFeedback:
    def test_ratio_and_dominant_cause(self):
        fb = AttributionFeedback(
            injections=100,
            relay_filter_fp=30,
            genuine_but_stale=5,
            direct_bf_fp=2,
            producer_self=0,
        )
        assert fb.false_injection_ratio == pytest.approx(0.3)
        assert fb.dominant_cause == "relay_filter_fp"
        assert fb.recommend() == "retouch"

    def test_clean_run(self):
        fb = AttributionFeedback(0, 0, 0, 0, 0)
        assert fb.false_injection_ratio == 0.0
        assert fb.dominant_cause == "none"
        assert fb.recommend() == "none"

    def test_staleness_recommends_faster_decay(self):
        fb = AttributionFeedback(50, 1, 20, 0, 0)
        assert fb.recommend() == "increase_df"

    def test_direct_bf_recommends_bigger_genuine_filters(self):
        fb = AttributionFeedback(50, 1, 0, 20, 0)
        assert fb.recommend() == "shrink_genuine_fpr"


class TestFeedbackFromAnalysis:
    def test_reads_golden_mini_fig7_document(self, mini_fig7_doc):
        fb = feedback_from_analysis(mini_fig7_doc)
        assert fb.injections == mini_fig7_doc["injections"]["total"]
        attribution = mini_fig7_doc["attribution"]
        assert fb.relay_filter_fp == attribution["relay_filter_fp"]
        assert fb.relay_filter_fp > 0
        assert fb.dominant_cause == "relay_filter_fp"
        assert fb.recommend() == "retouch"

    def test_rejects_non_analysis_document(self):
        with pytest.raises(ValueError, match="attribution"):
            feedback_from_analysis({"something": "else"})
        with pytest.raises(ValueError):
            feedback_from_analysis("not a dict")


class TestPlanRetouchFromAnalysis:
    def test_plans_when_relay_fps_present(self, mini_fig7_doc):
        protected = [f"wanted-{i}" for i in range(5)]
        candidates = [f"fp-{i}" for i in range(50)]
        plan = plan_retouch_from_analysis(
            mini_fig7_doc, candidates, protected, FAMILY, max_sacrifice=1
        )
        assert plan.neutralised_keys
        assert plan.cleared_bits

    def test_empty_plan_below_threshold(self, mini_fig7_doc):
        relay_fps = mini_fig7_doc["attribution"]["relay_filter_fp"]
        plan = plan_retouch_from_analysis(
            mini_fig7_doc,
            [f"fp-{i}" for i in range(10)],
            ["wanted"],
            FAMILY,
            min_relay_filter_fp=relay_fps + 1,
        )
        assert plan.is_empty()
        assert not plan.neutralised_keys
