"""Shared fixtures for the observability test suite.

The golden, invariant, and overhead tests all study the same seeded
mini-run (a scaled-down Fig. 7 Haggle scenario with deliberately tiny
32-bit filters so Bloom false positives — and hence every event type —
actually occur).  The instrumented run is session-scoped so the
simulation executes once, however many tests inspect it.
"""

import pytest

from repro.api import ExperimentSpec, run
from repro.experiments import ExperimentConfig
from repro.obs import Observability
from repro.traces import haggle_like

# The mini Fig. 7 scenario: small enough to run in seconds, rich enough
# to exercise all eight event types.  These parameters are part of the
# golden-trace identity — changing any of them invalidates the pinned
# digests in test_golden_trace.py.
MINI_FIG7_TRACE = dict(scale=0.01, seed=3)
MINI_FIG7_CONFIG = dict(
    ttl_min=120.0,
    min_rate_per_s=1 / 1800.0,
    num_bits=32,
    num_hashes=2,
)


def run_mini_fig7(obs=None):
    """One fresh instrumented (or plain) run of the mini Fig. 7 scenario."""
    trace = haggle_like(**MINI_FIG7_TRACE)
    config = ExperimentConfig(**MINI_FIG7_CONFIG)
    return run(trace, ExperimentSpec.from_config(config), obs=obs)


@pytest.fixture(scope="session")
def mini_fig7():
    """(Observability, RunResult) for one instrumented mini Fig. 7 run."""
    obs = Observability.enabled()
    result = run_mini_fig7(obs)
    return obs, result
