"""Unit tests for :mod:`repro.obs.timers` and the Observability bundle."""

from repro.obs import (
    MetricsRegistry,
    NULL_RECORDER,
    Observability,
    PhaseTimers,
    TraceRecorder,
)


class TestPhaseTimers:
    def test_accumulates_across_reentry(self):
        timers = PhaseTimers()
        with timers.phase("work"):
            pass
        with timers.phase("work"):
            pass
        summary = timers.summary()
        assert len(summary) == 1
        name, seconds, entries = summary[0]
        assert name == "work"
        assert entries == 2
        assert seconds >= 0.0
        assert timers.elapsed("work") == seconds

    def test_unknown_phase_elapsed_is_zero(self):
        assert PhaseTimers().elapsed("nope") == 0.0

    def test_summary_preserves_first_entry_order(self):
        timers = PhaseTimers()
        for name in ("setup", "simulate", "setup", "summarize"):
            with timers.phase(name):
                pass
        assert [row[0] for row in timers.summary()] == [
            "setup", "simulate", "summarize",
        ]

    def test_records_time_even_on_exception(self):
        timers = PhaseTimers()
        try:
            with timers.phase("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert timers.summary()[0][2] == 1

    def test_total_sums_phases(self):
        timers = PhaseTimers()
        with timers.phase("a"):
            pass
        with timers.phase("b"):
            pass
        assert timers.total() == timers.elapsed("a") + timers.elapsed("b")


class TestObservabilityBundle:
    def test_default_is_fully_disabled(self):
        obs = Observability()
        assert obs.tracer is NULL_RECORDER
        assert obs.registry is None
        assert obs.timers is None

    def test_disabled_classmethod(self):
        obs = Observability.disabled()
        assert obs.tracer.enabled is False
        assert obs.registry is None

    def test_enabled_classmethod(self):
        obs = Observability.enabled()
        assert isinstance(obs.tracer, TraceRecorder)
        assert isinstance(obs.registry, MetricsRegistry)
        assert isinstance(obs.timers, PhaseTimers)

    def test_phase_is_noop_without_timers(self):
        obs = Observability.disabled()
        with obs.phase("anything"):
            pass  # must not raise and must not create state

    def test_phase_times_with_timers(self):
        obs = Observability.enabled()
        with obs.phase("setup"):
            pass
        assert obs.timers.summary()[0][0] == "setup"
