"""Observability must only observe.

A seeded run's *behaviour* — its MetricsSummary, its engine
accounting — must be identical whether observability is absent
(``obs=None``), explicitly disabled, or fully enabled.  The recorder
pattern guarantees it structurally (``if recorder.enabled:`` guards
around every emit), and these tests enforce it end to end.

Timing overhead is asserted separately in
``benchmarks/bench_tcbf_ops.py`` (kept out of tier-1 so wall-clock
noise cannot fail the suite).
"""

from repro.obs import NULL_RECORDER, Observability

from .conftest import run_mini_fig7


def _summaries_equal(a, b):
    # MetricsSummary is a frozen dataclass of numbers; direct equality
    # is exact (and the mini run has deliveries, so no NaN fields).
    return a == b


class TestBehaviourUnchanged:
    def test_plain_run_matches_instrumented_run(self, mini_fig7):
        obs, instrumented = mini_fig7
        plain = run_mini_fig7(obs=None)
        assert _summaries_equal(plain.summary, instrumented.summary)
        assert plain.engine.bytes_transferred == (
            instrumented.engine.bytes_transferred
        )
        assert plain.engine.num_contacts == instrumented.engine.num_contacts
        assert plain.broker_fraction == instrumented.broker_fraction

    def test_disabled_bundle_matches_instrumented_run(self, mini_fig7):
        _, instrumented = mini_fig7
        disabled = Observability.disabled()
        result = run_mini_fig7(obs=disabled)
        assert _summaries_equal(result.summary, instrumented.summary)
        # A disabled bundle must stay disabled: nothing recorded.
        assert disabled.tracer is NULL_RECORDER
        assert disabled.registry is None

    def test_null_recorder_never_accumulates(self):
        # The null recorder is a shared singleton: if any code path
        # wrote state into it, every later run would see it.
        assert not hasattr(NULL_RECORDER, "events")
        NULL_RECORDER.emit("contact", t=0.0, a=1, b=2)
        assert not hasattr(NULL_RECORDER, "events")


class TestOpCountsAlwaysOn:
    def test_op_counts_identical_with_and_without_tracing(self, mini_fig7):
        # The protocol's plain-int op counters are maintained whether
        # or not events are traced, so registry output never depends
        # on the tracer being on.
        obs, instrumented = mini_fig7
        counts = obs.tracer.counts()
        plain = run_mini_fig7(obs=None)
        # Cross-check against the trace: the always-on counters and
        # the event stream must agree event-for-event.
        assert counts["delivery"] == plain.summary.num_deliveries
        assert counts["forward"] == plain.summary.num_forwardings
        assert counts["false_injection"] == plain.summary.num_false_injections
