"""Acceptance tests for :mod:`repro.obs.analyze` and ``repro analyze``.

The central claim: the analyzer reproduces a run's aggregate metrics
*exactly* — to the last digit — from the trace file alone, with no
access to the simulator's in-memory state, and attributes 100% of
false injections to a cause class while holding only the live message
set in memory.
"""

import json

import pytest

from repro.cli import main
from repro.obs import TraceEvent, analyze_trace
from repro.obs.events import trace_meta_line


@pytest.fixture(scope="module")
def mini_analysis(mini_fig7, tmp_path_factory):
    """(analysis, obs, result) after a trace-file round trip."""
    obs, result = mini_fig7
    path = tmp_path_factory.mktemp("analyze") / "mini.trace.jsonl"
    obs.tracer.write_jsonl(str(path))
    return analyze_trace(str(path)), obs, result


class TestExactReproduction:
    def test_totals_match_summary_to_last_digit(self, mini_analysis):
        analysis, obs, result = mini_analysis
        s = result.summary
        doc = analysis.to_dict()
        assert doc["messages"]["created"] == s.num_messages
        assert doc["messages"]["intended_pairs"] == s.num_intended_pairs
        assert doc["deliveries"]["total"] == s.num_deliveries
        assert doc["deliveries"]["intended"] == s.num_intended_deliveries
        assert doc["deliveries"]["false"] == s.num_false_deliveries
        assert doc["injections"]["total"] == s.num_injections
        assert doc["injections"]["false"] == s.num_false_injections
        # Float metrics reproduce bit-for-bit, not approximately: the
        # analyzer replays the same arithmetic over the same values.
        assert doc["deliveries"]["delay_mean_s"] == s.mean_delay_s
        assert doc["deliveries"]["delay_median_s"] == s.median_delay_s
        assert doc["deliveries"]["delivery_ratio"] == s.delivery_ratio
        assert (
            doc["deliveries"]["false_positive_ratio"]
            == s.false_positive_ratio
        )
        assert (
            doc["injections"]["false_injection_ratio"]
            == s.false_injection_ratio
        )
        assert (
            doc["injections"]["false"] + doc["injections"]["genuine_but_stale"]
            == s.num_useless_injections
        )

    def test_event_counts_match_recorder(self, mini_analysis):
        analysis, obs, _ = mini_analysis
        recorded = {k: v for k, v in obs.tracer.counts().items() if v}
        assert analysis.to_dict()["events"] == recorded

    def test_every_false_injection_attributed(self, mini_analysis):
        analysis, _, result = mini_analysis
        attribution = analysis.to_dict()["attribution"]
        assert attribution["relay_filter_fp"] > 0  # 32-bit filters do FP
        assert (
            attribution["false_injections_attributed"]
            == result.summary.num_false_injections
        )
        assert attribution["false_injection_coverage"] == 1.0
        # Every false delivery is attributed too.
        assert (
            attribution["direct_bf_fp"] + attribution["producer_self"]
            == result.summary.num_false_deliveries
        )

    def test_latency_decomposition_telescopes(self, mini_analysis):
        analysis, _, result = mini_analysis
        latency = analysis.to_dict()["latency"]
        assert latency["decomposed"] == result.summary.num_deliveries
        assert latency["max_residual_s"] <= 1e-6
        assert latency["producer_wait_mean_s"] > 0
        assert latency["carry_mean_s"] >= 0

    def test_memory_stays_bounded_by_live_set(self, mini_analysis):
        analysis, _, result = mini_analysis
        memory = analysis.to_dict()["memory"]
        assert memory["finalized_messages"] == result.summary.num_messages
        # The scenario creates ~81k messages but only the TTL window's
        # worth are ever live at once.
        assert memory["peak_live_messages"] < result.summary.num_messages / 10


class TestCliRoundTrip:
    def test_run_then_analyze_agree(self, tmp_path, capsys):
        trace_path = tmp_path / "cli.trace.jsonl"
        analysis_path = tmp_path / "analysis.json"
        args = [
            "run", "--trace", "haggle", "--scale", "0.004", "--seed", "3",
            "--protocol", "B-SUB", "--ttl-min", "120",
            "--num-bits", "32", "--num-hashes", "2",
        ]
        assert main(args + ["--trace-out", str(trace_path)]) == 0
        run_out = capsys.readouterr().out
        assert main([
            "analyze", str(trace_path),
            "--json", str(analysis_path), "--top", "3",
        ]) == 0
        analyze_out = capsys.readouterr().out
        assert "False-positive attribution" in analyze_out
        assert "Latency decomposition" in analyze_out
        doc = json.loads(analysis_path.read_text())
        # The run summary table and the trace analysis describe the
        # same run: cross-check the totals the CLI printed.
        for label, value in [
            ("messages", doc["messages"]["created"]),
            ("intended pairs", doc["messages"]["intended_pairs"]),
        ]:
            assert f"{value:,}" in run_out or str(value) in run_out, label
        assert doc["schema"] == {"analysis": 1, "trace": 2}
        assert len(doc["slowest"]) == 3

    def test_analyze_missing_file_fails_cleanly(self, tmp_path):
        with pytest.raises(OSError):
            main(["analyze", str(tmp_path / "nope.jsonl")])


class TestStreamingAndCompat:
    def test_100k_event_trace_bounded_memory(self):
        # 50k messages x (create + forward + delivery) = 150k events,
        # staggered so only ~20 are alive at once.  peak_live must track
        # the overlap, not the trace length.
        def events():
            seq = 0
            for i in range(50_000):
                t = float(i)
                yield TraceEvent(seq=seq, t=t, type="create",
                                 fields={"msg": i, "node": 0, "ttl": 20.0,
                                         "num_intended": 1})
                seq += 1
                yield TraceEvent(seq=seq, t=t + 1.0, type="forward",
                                 fields={"msg": i, "kind": "direct",
                                         "src": 0, "dst": 1})
                seq += 1
                yield TraceEvent(seq=seq, t=t + 1.0, type="delivery",
                                 fields={"msg": i, "node": 1,
                                         "intended": True})
                seq += 1

        analysis = analyze_trace(events(), trace_schema=2)
        doc = analysis.to_dict()
        assert doc["messages"]["created"] == 50_000
        assert doc["deliveries"]["intended"] == 50_000
        assert doc["memory"]["peak_live_messages"] <= 25
        assert doc["memory"]["finalized_messages"] == 50_000

    def test_headerless_schema1_trace_analyzes(self, mini_fig7, tmp_path):
        # Strip create/sim_end events and the meta header to fake a
        # pre-versioning trace; the analyzer must still parse it and
        # count every false injection.
        obs, result = mini_fig7
        path = tmp_path / "old.trace.jsonl"
        with open(path, "w") as fh:
            for event in obs.tracer.events:
                if event.type in ("create", "sim_end"):
                    continue
                fh.write(event.to_json() + "\n")
        assert not path.read_text().startswith(trace_meta_line())
        doc = analyze_trace(str(path)).to_dict()
        assert doc["schema"]["trace"] == 1
        assert doc["messages"]["created"] == 0
        assert doc["deliveries"]["total"] == result.summary.num_deliveries
        assert doc["injections"]["false"] == (
            result.summary.num_false_injections
        )
        # No creation times -> no delay, but chains still reconstruct.
        assert doc["deliveries"]["delay_mean_s"] is None
        assert doc["latency"]["decomposed"] == 0


class TestSnapshot:
    def test_analysis_is_deterministic(self, mini_analysis, tmp_path):
        # Same trace bytes -> same analysis bytes (the property the CI
        # drift check relies on).
        analysis, obs, _ = mini_analysis
        path = tmp_path / "again.trace.jsonl"
        obs.tracer.write_jsonl(str(path))
        assert analyze_trace(str(path)).to_json() == analysis.to_json()

    def test_matches_checked_in_snapshot(self, mini_analysis, request):
        analysis, _, _ = mini_analysis
        snapshot_path = (
            request.path.parent / "data" / "mini_fig7_analysis.json"
        )
        snapshot = json.loads(snapshot_path.read_text())
        assert analysis.to_dict() == snapshot, (
            "analysis drifted from tests/obs/data/mini_fig7_analysis.json; "
            "if the change is intentional, regenerate the snapshot with "
            "scripts/regen_analysis_snapshot.py"
        )
