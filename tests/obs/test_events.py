"""Unit tests for :mod:`repro.obs.events`."""

import json

import pytest

from repro.obs import EVENT_TYPES, TraceEvent


class TestEventTypes:
    def test_exactly_fourteen_types(self):
        assert len(EVENT_TYPES) == 14
        assert len(set(EVENT_TYPES)) == 14

    def test_expected_vocabulary(self):
        assert set(EVENT_TYPES) == {
            "create",
            "contact",
            "a_merge",
            "m_merge",
            "decay_tick",
            "forward",
            "delivery",
            "false_injection",
            "broker_role",
            "frame_dropped",
            "frame_truncated",
            "node_crashed",
            "node_recovered",
            "sim_end",
        }

    def test_schema_version_and_meta_line(self):
        from repro.obs import TRACE_SCHEMA_VERSION
        from repro.obs.events import TRACE_META_TYPE, trace_meta_line

        assert TRACE_SCHEMA_VERSION == 2
        record = json.loads(trace_meta_line())
        assert record == {"schema": 2, "type": TRACE_META_TYPE}
        # The meta type must never collide with the event vocabulary.
        assert TRACE_META_TYPE not in EVENT_TYPES


class TestTraceEvent:
    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown event type"):
            TraceEvent(seq=0, t=0.0, type="teleport", fields={})

    def test_to_dict_is_flat(self):
        event = TraceEvent(
            seq=3, t=12.5, type="forward", fields={"msg": 7, "src": 1, "dst": 2}
        )
        assert event.to_dict() == {
            "seq": 3, "t": 12.5, "type": "forward", "msg": 7, "src": 1, "dst": 2,
        }

    def test_envelope_collision_rejected(self):
        event = TraceEvent(seq=0, t=0.0, type="contact", fields={"seq": 99})
        with pytest.raises(ValueError, match="collides"):
            event.to_dict()

    def test_to_json_is_canonical(self):
        event = TraceEvent(seq=0, t=1.0, type="contact", fields={"b": 2, "a": 1})
        line = event.to_json()
        assert line == '{"a":1,"b":2,"seq":0,"t":1.0,"type":"contact"}'
        # Canonical means: parsing and re-encoding reproduces the bytes.
        assert (
            json.dumps(json.loads(line), sort_keys=True, separators=(",", ":"))
            == line
        )

    def test_numpy_scalars_coerced(self):
        np = pytest.importorskip("numpy")
        event = TraceEvent(
            seq=0, t=0.0, type="decay_tick",
            fields={"dt": np.float64(2.5), "bits": np.int64(4)},
        )
        record = event.to_dict()
        assert type(record["dt"]) is float and record["dt"] == 2.5
        assert type(record["bits"]) is int and record["bits"] == 4

    def test_nan_rejected(self):
        event = TraceEvent(
            seq=0, t=0.0, type="delivery", fields={"x": float("nan")}
        )
        with pytest.raises(ValueError):
            event.to_json()

    def test_from_dict_roundtrip(self):
        event = TraceEvent(
            seq=5, t=30.0, type="delivery",
            fields={"msg": 1, "node": 4, "intended": True},
        )
        rebuilt = TraceEvent.from_dict(json.loads(event.to_json()))
        assert rebuilt == event
        assert rebuilt.to_json() == event.to_json()
