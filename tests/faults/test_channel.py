"""Unit tests for :class:`repro.faults.FaultyContactChannel`."""

import random

import pytest

from repro.faults import FaultSpec, FaultyContactChannel
from repro.faults.plan import FaultAccounting


def make_channel(spec, *, duration_s=10.0, rate_bps=800.0, seed="x",
                 accounting=None):
    # 800 bps for 10 s = 1000 bytes of budget.
    return FaultyContactChannel(
        duration_s, rate_bps, spec=spec, rng=random.Random(seed),
        accounting=accounting,
    )


class TestLoss:
    def test_loss_charges_airtime_but_reports_failure(self):
        spec = FaultSpec(frame_loss=1.0)
        acc = FaultAccounting()
        ch = make_channel(spec, accounting=acc)
        assert ch.send(100, sender=1, receiver=2) is False
        # The radio transmitted: budget spent, bytes attributed.
        assert ch.spent_bytes == 100
        assert ch.tx_bytes == {1: 100}
        assert ch.rx_bytes == {2: 100}
        assert acc.frames_lost == 1
        assert acc.frames_corrupted == 0

    def test_all_zero_rates_pass_through(self):
        ch = make_channel(FaultSpec())  # every rate zero
        for _ in range(5):
            assert ch.send(100) is True
        assert ch.spent_bytes == 500

    def test_deterministic_for_same_rng_seed(self):
        spec = FaultSpec(frame_loss=0.5)

        def outcomes(seed):
            ch = make_channel(spec, seed=seed)
            return [ch.send(50) for _ in range(10)]

        assert outcomes("a") == outcomes("a")
        assert outcomes("a") != outcomes("b")  # astronomically unlikely equal

    def test_loss_still_counts_toward_exhaustion(self):
        ch = make_channel(FaultSpec(frame_loss=1.0))
        for _ in range(10):
            ch.send(100)
        assert ch.exhausted()
        # Budget gone: further sends refused, not drawn.
        assert ch.send(100) is False
        assert ch.refused_transfers == 1


class TestCorruption:
    def test_corruption_accounted_separately(self):
        acc = FaultAccounting()
        ch = make_channel(FaultSpec(corruption=1.0), accounting=acc)
        assert ch.send(100) is False
        assert acc.frames_corrupted == 1
        assert acc.frames_lost == 0

    def test_loss_wins_attribution_when_both_fire(self):
        acc = FaultAccounting()
        ch = make_channel(
            FaultSpec(frame_loss=1.0, corruption=1.0), accounting=acc
        )
        ch.send(100)
        assert acc.frames_lost == 1 and acc.frames_corrupted == 0


class TestTruncation:
    def test_truncated_contact_cuts_budget(self):
        spec = FaultSpec(truncation=1.0, seed=0)
        acc = FaultAccounting()
        ch = make_channel(spec, accounting=acc)
        assert ch.truncated
        assert acc.contacts_truncated == 1
        sent = 0
        while ch.send(100):
            sent += 100
        # The straddling frame burned the prefix up to the cutoff...
        assert acc.frames_truncated == 1
        assert ch.spent_bytes < 1000
        assert ch.spent_bytes >= sent
        # ...and the channel is now hard-closed.
        assert ch.exhausted()
        assert ch.send(1) is False

    def test_only_first_straddler_counts(self):
        acc = FaultAccounting()
        ch = make_channel(FaultSpec(truncation=1.0), accounting=acc)
        while ch.send(100):
            pass
        ch.send(100)
        ch.send(100)
        assert acc.frames_truncated == 1

    def test_infinite_budget_never_truncates(self):
        ch = FaultyContactChannel(
            10.0, None, spec=FaultSpec(truncation=1.0),
            rng=random.Random(1),
        )
        assert not ch.truncated
        assert ch.send(10**9) is True

    def test_untruncated_contact_behaves_normally(self):
        # truncation < 1 with an rng draw that misses.
        spec = FaultSpec(truncation=0.01, seed=5)
        ch = make_channel(spec, seed="lucky")
        assert not ch.truncated
        assert ch.send(500) is True
        assert ch.send(500) is True
        assert ch.send(1) is False  # plain budget exhaustion


class TestContract:
    def test_negative_size_rejected(self):
        ch = make_channel(FaultSpec(frame_loss=0.5))
        with pytest.raises(ValueError, match="negative"):
            ch.send(-1)

    def test_is_a_contact_channel(self):
        from repro.dtn.bandwidth import ContactChannel

        assert isinstance(make_channel(FaultSpec(frame_loss=0.1)),
                          ContactChannel)
