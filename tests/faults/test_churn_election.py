"""Broker election under churn (satellite of the fault subsystem).

The regression this guards: a broker that was demoted (or crashed) must
not reappear as a broker from *stale* Hello degree data another user
still remembers.  The sliding window ``W`` semantics must survive a
restart — the rebooted node's meeting log and degree start from zero,
and other users prune their remembered degree report for it on their
next election pass.
"""

from repro.pubsub.broker_allocation import BrokerElection, StaticBrokerSet


def make_election(**kwargs):
    defaults = dict(
        nodes=range(6), lower_bound=0, upper_bound=10, window_s=1000.0
    )
    defaults.update(kwargs)
    return BrokerElection(**defaults)


class TestResetNode:
    def test_reset_clears_role_log_and_known_degrees(self):
        election = make_election(initial_brokers=[3])
        election.on_contact(3, 4, 100.0)   # gives 3 a degree
        election.on_contact(0, 3, 150.0)   # user 0 learns 3's degree
        assert election.is_broker(3)
        assert election.degree_of(3) == 2
        assert election._known_broker_degrees[0] == {3: 2}

        election.reset_node(3)
        assert not election.is_broker(3)
        assert election.degree_of(3) == 0          # window log gone
        assert election._known_broker_degrees[3] == {}

    def test_reset_is_not_an_election_decision(self):
        election = make_election(initial_brokers=[3])
        election.reset_node(3)
        assert election.demotions == 0
        assert election.promotions == 0


class TestStaleHelloData:
    def test_crashed_broker_degree_pruned_from_observers(self):
        election = make_election(initial_brokers=[3])
        election.on_contact(0, 3, 100.0)   # 0 remembers 3's degree
        assert 3 in election._known_broker_degrees[0]

        election.reset_node(3)             # 3 crashes
        # 0's next election pass (any contact) prunes the stale report
        # even though 3 is still inside 0's meeting window.
        election.on_contact(0, 1, 200.0)
        assert 3 not in election._known_broker_degrees[0]
        assert not election.is_broker(3)

    def test_demoted_then_crashed_broker_does_not_resurrect(self):
        # Make 3 a broker everyone has met, demote it via the T_u rule,
        # then crash it: no later contact may flip it back to broker
        # except a genuine new promotion decision.
        election = make_election(
            lower_bound=0, upper_bound=1, initial_brokers=[1, 2, 3]
        )
        # User 0 meets all three brokers: count (3) > T_u (1).  Broker 3
        # is kept least-popular (no other meetings), so 0 demotes it.
        election.on_contact(1, 4, 50.0)    # brokers 1, 2 gain degree
        election.on_contact(2, 4, 60.0)
        election.on_contact(0, 1, 100.0)
        election.on_contact(0, 2, 110.0)
        election.on_contact(0, 3, 120.0)
        assert not election.is_broker(3)
        assert election.demotions == 1

        election.reset_node(3)             # ...and now it crashes too
        # Contacts that do not trigger the T_l rule must never
        # resurrect it, stale window entries notwithstanding.
        election.on_contact(0, 3, 130.0)
        election.on_contact(4, 3, 140.0)
        assert not election.is_broker(3)

    def test_rebooted_node_rejoins_via_lower_bound_rule_only(self):
        election = make_election(lower_bound=3, upper_bound=5,
                                 initial_brokers=[3])
        election.reset_node(3)
        assert not election.is_broker(3)
        # User 0 has met no brokers (< T_l): the next meeting promotes
        # the rebooted node — the legitimate re-election path.  (Node 3
        # is equally broker-starved, so the designation is mutual.)
        election.on_contact(0, 3, 200.0)
        assert election.is_broker(3)
        assert election.promotions == 2

    def test_window_restarts_from_zero_after_crash(self):
        election = make_election(initial_brokers=[3])
        for t, peer in ((100.0, 0), (200.0, 1), (300.0, 2)):
            election.on_contact(3, peer, t)
        assert election.degree_of(3) == 3
        election.reset_node(3)
        election.on_contact(3, 5, 400.0)
        # Pre-crash meetings are gone even though they are within W.
        assert election.degree_of(3) == 1


class TestStaticBrokers:
    def test_reset_is_noop_for_pinned_assignment(self):
        static = StaticBrokerSet(range(4), brokers=[2])
        static.reset_node(2)
        assert static.is_broker(2)
        assert static.brokers() == {2}
