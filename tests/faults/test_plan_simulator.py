"""FaultPlan + Simulation integration: skips, accounting, channels."""

import pytest

from repro.dtn.bandwidth import ContactChannel
from repro.dtn.events import MessageEvent
from repro.dtn.simulator import Protocol, Simulation
from repro.faults import FaultPlan, FaultSpec, FaultyContactChannel
from repro.traces.model import Contact, ContactTrace


class RecordingProtocol(Protocol):
    """Logs every engine callback; infinite appetite, no forwarding."""

    name = "recorder"

    def __init__(self):
        self.messages = []
        self.contacts = []
        self.crashes = []
        self.recoveries = []

    def on_message_created(self, node, message, now):
        self.messages.append((node, message, now))

    def on_contact(self, contact, channel, now):
        self.contacts.append((contact.a, contact.b, now, channel))

    def on_node_crashed(self, node, now, mode="wipe"):
        self.crashes.append((node, now, mode))

    def on_node_recovered(self, node, now):
        self.recoveries.append((node, now))


def make_trace():
    contacts = [
        Contact.make(100.0, 60.0, 0, 1),
        Contact.make(300.0, 60.0, 1, 2),
        Contact.make(500.0, 60.0, 2, 3),
        Contact.make(700.0, 60.0, 0, 3),
    ]
    return ContactTrace(contacts, nodes=range(4), name="mini")


class TestPlanConstruction:
    def test_disabled_spec_refused(self):
        with pytest.raises(ValueError, match="disabled FaultSpec"):
            FaultPlan(FaultSpec(), make_trace())

    def test_schedule_spans_trace_window(self):
        plan = FaultPlan(
            FaultSpec(crash_rate_per_day=500.0, seed=1), make_trace()
        )
        assert len(plan.schedule) > 0
        assert all(
            e.time > 100.0 for e in plan.schedule if e.kind == "crash"
        )

    def test_channel_only_spec_has_empty_schedule(self):
        plan = FaultPlan(FaultSpec(frame_loss=0.5), make_trace())
        assert len(plan.schedule) == 0
        assert not plan.is_down(0)


class TestMakeChannel:
    def test_channel_faults_build_faulty_channel(self):
        plan = FaultPlan(FaultSpec(frame_loss=0.5), make_trace())
        channel = plan.make_channel(make_trace().contacts[0], 0, 250_000)
        assert isinstance(channel, FaultyContactChannel)

    def test_churn_only_spec_builds_plain_channel(self):
        plan = FaultPlan(FaultSpec(crash_rate_per_day=1.0), make_trace())
        channel = plan.make_channel(make_trace().contacts[0], 0, 250_000)
        assert type(channel) is ContactChannel

    def test_channel_keyed_by_contact_index(self):
        plan = FaultPlan(FaultSpec(frame_loss=0.5, seed=3), make_trace())
        contact = make_trace().contacts[0]

        def outcomes(index):
            ch = plan.make_channel(contact, index, 250_000)
            return [ch.send(100) for _ in range(20)]

        assert outcomes(0) == outcomes(0)
        assert outcomes(0) != outcomes(1)


class TestSimulationIntegration:
    def test_down_producer_skips_message(self):
        trace = make_trace()
        plan = FaultPlan(FaultSpec(frame_loss=0.001), trace)
        # Force node 1 down by hand for the whole run.
        plan._down.add(1)
        protocol = RecordingProtocol()
        events = [MessageEvent(150.0, 1, "from-1"), MessageEvent(160.0, 2, "from-2")]
        report = Simulation(trace, protocol, events, faults=plan).run()
        assert [m[1] for m in protocol.messages] == ["from-2"]
        assert report.num_messages_created == 1
        assert plan.accounting.messages_skipped == 1

    def test_down_endpoint_skips_contact(self):
        trace = make_trace()
        plan = FaultPlan(FaultSpec(frame_loss=0.001), trace)
        plan._down.add(2)  # kills contacts (1,2) and (2,3)
        protocol = RecordingProtocol()
        report = Simulation(trace, protocol, faults=plan).run()
        assert [(a, b) for a, b, _, _ in protocol.contacts] == [(0, 1), (0, 3)]
        # Skipped contacts still count as engine-level trace progress...
        assert report.num_contacts == 4
        assert plan.accounting.contacts_skipped == 2
        # ...but do not appear in per-node contact attribution.
        assert report.contacts_by_node == {0: 2, 1: 1, 3: 1}

    def test_churn_callbacks_reach_protocol(self):
        trace = make_trace()
        plan = FaultPlan(
            FaultSpec(crash_rate_per_day=2000.0, mean_downtime_s=30.0,
                      crash_mode="age", seed=7),
            trace,
        )
        protocol = RecordingProtocol()
        Simulation(trace, protocol, faults=plan).run()
        assert len(protocol.crashes) == plan.accounting.crashes > 0
        assert len(protocol.recoveries) == plan.accounting.recoveries
        assert all(mode == "age" for _, _, mode in protocol.crashes)
        # Recoveries never outnumber crashes; any gap is an overhanging
        # outage past the trace end.
        assert 0 <= (
            plan.accounting.crashes - plan.accounting.recoveries
        ) <= len(trace.nodes)

    def test_accounting_lands_in_report_extra(self):
        trace = make_trace()
        plan = FaultPlan(FaultSpec(frame_loss=1.0, seed=1), trace)
        protocol = RecordingProtocol()
        report = Simulation(trace, protocol, faults=plan).run()
        assert report.extra["faults"] == plan.accounting.as_dict()
        assert set(report.extra["faults"]) == {
            "frames_lost", "frames_corrupted", "frames_truncated",
            "contacts_truncated", "contacts_skipped", "messages_skipped",
            "crashes", "recoveries",
        }

    def test_no_plan_leaves_report_extra_empty(self):
        report = Simulation(make_trace(), RecordingProtocol()).run()
        assert "faults" not in report.extra

    def test_full_loss_run_is_deterministic(self):
        trace = make_trace()

        def run_once():
            plan = FaultPlan(
                FaultSpec(frame_loss=0.5, crash_rate_per_day=1000.0,
                          mean_downtime_s=60.0, seed=11),
                trace,
            )
            protocol = RecordingProtocol()
            Simulation(trace, protocol, faults=plan).run()
            return plan.accounting.as_dict(), protocol.crashes

        assert run_once() == run_once()
