"""Unit tests for :class:`repro.faults.FaultSpec`."""

import pytest

from repro.faults import NO_FAULTS, FaultSpec


class TestValidation:
    def test_defaults_are_disabled(self):
        spec = FaultSpec()
        assert not spec.enabled
        assert not spec.channel_faults
        assert not spec.churn

    @pytest.mark.parametrize("field", ["frame_loss", "truncation", "corruption"])
    @pytest.mark.parametrize("bad", [-0.1, 1.1, float("nan"), float("inf")])
    def test_probability_fields_bounded(self, field, bad):
        with pytest.raises(ValueError, match=field):
            FaultSpec(**{field: bad})

    def test_negative_crash_rate_rejected(self):
        with pytest.raises(ValueError, match="crash_rate_per_day"):
            FaultSpec(crash_rate_per_day=-1.0)

    @pytest.mark.parametrize("bad", [0.0, -5.0, float("nan")])
    def test_downtime_must_be_positive(self, bad):
        with pytest.raises(ValueError, match="mean_downtime_s"):
            FaultSpec(mean_downtime_s=bad)

    def test_unknown_crash_mode_rejected(self):
        with pytest.raises(ValueError, match="crash_mode"):
            FaultSpec(crash_mode="explode")

    def test_boundary_probabilities_allowed(self):
        spec = FaultSpec(frame_loss=1.0, truncation=0.0, corruption=1.0)
        assert spec.enabled


class TestClassification:
    def test_channel_only(self):
        spec = FaultSpec(frame_loss=0.1)
        assert spec.channel_faults and not spec.churn and spec.enabled

    def test_churn_only(self):
        spec = FaultSpec(crash_rate_per_day=2.0)
        assert spec.churn and not spec.channel_faults and spec.enabled

    def test_none_is_shared_disabled_instance(self):
        assert FaultSpec.none() is NO_FAULTS
        assert not NO_FAULTS.enabled

    def test_nonzero_downtime_alone_stays_disabled(self):
        # Downtime without a crash rate can never fire.
        assert not FaultSpec(mean_downtime_s=60.0).enabled


class TestParse:
    def test_full_spec(self):
        spec = FaultSpec.parse(
            "loss=0.1,trunc=0.2,corrupt=0.01,crash=2,downtime=1800,"
            "mode=age,seed=3"
        )
        assert spec == FaultSpec(
            frame_loss=0.1, truncation=0.2, corruption=0.01,
            crash_rate_per_day=2.0, mean_downtime_s=1800.0,
            crash_mode="age", seed=3,
        )

    def test_full_field_names_accepted(self):
        assert FaultSpec.parse("frame_loss=0.5") == FaultSpec(frame_loss=0.5)

    def test_whitespace_and_empty_items_tolerated(self):
        assert FaultSpec.parse(" loss=0.1 , ,crash=1 ") == FaultSpec(
            frame_loss=0.1, crash_rate_per_day=1.0
        )

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault spec key"):
            FaultSpec.parse("explosions=0.5")

    def test_missing_equals_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            FaultSpec.parse("loss")

    def test_parse_validates(self):
        with pytest.raises(ValueError, match="frame_loss"):
            FaultSpec.parse("loss=2.0")


class TestHelpers:
    def test_with_seed(self):
        spec = FaultSpec(frame_loss=0.1, seed=0).with_seed(7)
        assert spec.seed == 7 and spec.frame_loss == 0.1

    def test_describe_disabled(self):
        assert FaultSpec().describe() == "no faults"

    def test_describe_mentions_active_faults(self):
        text = FaultSpec(
            frame_loss=0.25, crash_rate_per_day=2.0, seed=3
        ).describe()
        assert "loss=0.25" in text
        assert "crash=2/day" in text
        assert "seed=3" in text
        assert "trunc" not in text

    def test_frozen(self):
        with pytest.raises(AttributeError):
            FaultSpec().frame_loss = 0.5
