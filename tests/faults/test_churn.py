"""Unit tests for the deterministic churn scheduler."""

import pytest

from repro.faults import ChurnEvent, ChurnSchedule, FaultSpec

SPEC = FaultSpec(crash_rate_per_day=4.0, mean_downtime_s=1800.0, seed=3)
NODES = tuple(range(10))
END = 3 * 86_400.0


class TestChurnEvent:
    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            ChurnEvent(0.0, 1, "reboot")

    def test_ordering_is_by_time(self):
        assert ChurnEvent(1.0, 9, "crash") < ChurnEvent(2.0, 0, "crash")


class TestScheduleValidation:
    def test_double_crash_rejected(self):
        with pytest.raises(ValueError, match="already down"):
            ChurnSchedule([
                ChurnEvent(1.0, 0, "crash"),
                ChurnEvent(2.0, 0, "crash"),
            ])

    def test_recover_while_up_rejected(self):
        with pytest.raises(ValueError, match="already up"):
            ChurnSchedule([ChurnEvent(1.0, 0, "recover")])

    def test_alternation_accepted(self):
        schedule = ChurnSchedule([
            ChurnEvent(1.0, 0, "crash"),
            ChurnEvent(2.0, 0, "recover"),
            ChurnEvent(3.0, 0, "crash"),
        ])
        assert len(schedule) == 3


class TestGenerate:
    def test_deterministic_across_calls(self):
        one = ChurnSchedule.generate(SPEC, NODES, 0.0, END)
        two = ChurnSchedule.generate(SPEC, NODES, 0.0, END)
        assert one.events == two.events
        assert len(one) > 0

    def test_seed_changes_schedule(self):
        one = ChurnSchedule.generate(SPEC, NODES, 0.0, END)
        two = ChurnSchedule.generate(SPEC.with_seed(99), NODES, 0.0, END)
        assert one.events != two.events

    def test_per_node_streams_independent_of_population(self):
        # A node's schedule must not shift when other nodes exist.
        small = ChurnSchedule.generate(SPEC, (3,), 0.0, END)
        large = ChurnSchedule.generate(SPEC, NODES, 0.0, END)
        assert [e for e in small if e.node == 3] == [
            e for e in large if e.node == 3
        ]

    def test_zero_rate_is_empty(self):
        spec = FaultSpec(frame_loss=0.5)  # enabled, but no churn
        assert len(ChurnSchedule.generate(spec, NODES, 0.0, END)) == 0

    def test_crashes_inside_window_recoveries_may_overhang(self):
        schedule = ChurnSchedule.generate(SPEC, NODES, 0.0, END)
        for event in schedule:
            if event.kind == "crash":
                assert 0.0 < event.time < END
            else:
                assert event.time > 0.0  # may exceed END (long outage)

    def test_downtime_at_least_one_second(self):
        crashes = {}
        for event in ChurnSchedule.generate(SPEC, NODES, 0.0, END):
            if event.kind == "crash":
                crashes[event.node] = event.time
            else:
                assert event.time - crashes.pop(event.node) >= 1.0

    def test_rate_scales_event_count(self):
        lazy = ChurnSchedule.generate(
            FaultSpec(crash_rate_per_day=0.5, seed=3), NODES, 0.0, END
        )
        busy = ChurnSchedule.generate(
            FaultSpec(crash_rate_per_day=8.0, seed=3), NODES, 0.0, END
        )
        assert len(busy) > len(lazy)

    def test_events_sorted_by_time(self):
        times = [e.time for e in ChurnSchedule.generate(SPEC, NODES, 0.0, END)]
        assert times == sorted(times)
