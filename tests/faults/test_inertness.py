"""Provable inertness: a disabled FaultSpec is the fault-free code path.

The acceptance bar from the issue: with all fault rates at zero the
fault layer must not merely be *statistically* invisible — the golden
event-trace digest must be byte-identical to a run with no FaultSpec at
all.  A disabled spec never builds a FaultPlan, so the simulator takes
the exact pre-fault branch.
"""

import pytest

from repro.api import ExperimentSpec, run
from repro.experiments import ExperimentConfig
from repro.faults import FaultSpec
from repro.obs import Observability
from repro.traces import haggle_like
from tests.obs.conftest import MINI_FIG7_CONFIG, MINI_FIG7_TRACE
from tests.obs.test_golden_trace import MINI_FIG7_TRACE_DIGEST


def digest_of(faults):
    trace = haggle_like(**MINI_FIG7_TRACE)
    config = ExperimentConfig(faults=faults, **MINI_FIG7_CONFIG)
    obs = Observability.enabled()
    result = run(trace, ExperimentSpec.from_config(config), obs=obs)
    return obs.tracer.digest(), result


def test_disabled_spec_matches_golden_digest_byte_for_byte():
    digest, result = digest_of(FaultSpec())
    assert digest == MINI_FIG7_TRACE_DIGEST
    assert result.fault_accounting is None


def test_disabled_spec_equals_no_spec():
    with_disabled, faulted = digest_of(FaultSpec())
    without, clean = digest_of(None)
    assert with_disabled == without
    assert faulted.summary == clean.summary


def test_enabled_spec_diverges():
    # Sanity check on the check itself: a live fault rate must move the
    # digest, otherwise the two tests above prove nothing.
    digest, result = digest_of(FaultSpec(frame_loss=0.5, seed=3))
    assert digest != MINI_FIG7_TRACE_DIGEST
    assert result.fault_accounting["frames_lost"] > 0


def test_all_zero_rates_classified_disabled():
    spec = FaultSpec()
    assert not spec.enabled
    assert not spec.channel_faults
    assert not spec.churn
    with pytest.raises(ValueError, match="disabled FaultSpec"):
        from repro.faults import FaultPlan

        FaultPlan(spec, haggle_like(**MINI_FIG7_TRACE))
