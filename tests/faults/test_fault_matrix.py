"""Loss-matrix smoke test: the CI fault matrix re-runs this module with
``BSUB_FAULT_LOSS`` ∈ {0, 0.1, 0.5}.

Whatever the loss rate, one seeded mini Haggle run must complete and
keep its books balanced: every delivery is classified intended or
false, ratios stay inside [0, 1], and the fault ledger only records
the fault kinds that were actually enabled.
"""

import os

import pytest

from repro.api import ExperimentSpec, run
from repro.experiments import ExperimentConfig
from repro.faults import FaultSpec
from repro.traces import haggle_like

LOSS = float(os.environ.get("BSUB_FAULT_LOSS", "0.1"))


@pytest.fixture(scope="module")
def matrix_run():
    trace = haggle_like(scale=0.01, seed=3)
    faults = FaultSpec(frame_loss=LOSS, seed=5) if LOSS > 0 else None
    config = ExperimentConfig(
        ttl_min=120.0,
        min_rate_per_s=1 / 1800.0,
        num_bits=32,
        num_hashes=2,
        faults=faults,
    )
    result = run(trace, ExperimentSpec.from_config(config))
    return trace, result


def test_run_completes(matrix_run):
    trace, result = matrix_run
    assert result.summary.num_messages > 0
    # Loss never swallows trace progress: every contact is processed.
    assert result.engine.num_contacts == len(trace.contacts)


def test_delivery_accounting_conserved(matrix_run):
    _, result = matrix_run
    s = result.summary
    assert s.num_deliveries == s.num_intended_deliveries + s.num_false_deliveries
    assert s.num_intended_deliveries <= s.num_intended_pairs
    assert 0.0 <= s.delivery_ratio <= 1.0
    assert 0.0 <= s.false_positive_ratio <= 1.0


def test_injection_accounting_conserved(matrix_run):
    _, result = matrix_run
    s = result.summary
    assert s.num_false_injections + s.num_useless_injections <= s.num_injections
    assert s.num_forwardings >= 0


def test_fault_ledger_matches_enabled_faults(matrix_run):
    _, result = matrix_run
    acc = result.fault_accounting
    if LOSS == 0:
        assert acc is None  # fault-free run carries no ledger
        return
    assert acc is not None
    assert acc["frames_lost"] > 0
    # Only channel loss was enabled: everything else must stay zero.
    for key in ("frames_corrupted", "frames_truncated", "contacts_truncated",
                "contacts_skipped", "messages_skipped", "crashes",
                "recoveries"):
        assert acc[key] == 0, key
