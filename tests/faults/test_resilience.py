"""Degradation accounting: faulted run vs. its fault-free twin."""

import pytest

from repro.api import ExperimentSpec, resilience
from repro.experiments import ExperimentConfig
from repro.experiments.resilience import ResilienceReport, resilience_report
from repro.faults import FaultSpec
from repro.traces import haggle_like

FAULTS = FaultSpec(frame_loss=0.5, seed=3)
CONFIG = dict(
    ttl_min=120.0, min_rate_per_s=1 / 1800.0, num_bits=32, num_hashes=2
)


@pytest.fixture(scope="module")
def report():
    trace = haggle_like(scale=0.01, seed=3)
    spec = ExperimentSpec.from_config(
        ExperimentConfig(faults=FAULTS, **CONFIG)
    )
    return resilience(trace, spec)


class TestTwin:
    def test_twin_sees_identical_workload(self, report):
        # Workload and interests derive from config seeds, not from the
        # fault layer: both runs must study the same experiment.
        assert (report.faulted.summary.num_messages
                == report.baseline.summary.num_messages)
        assert (report.faulted.summary.num_intended_pairs
                == report.baseline.summary.num_intended_pairs)

    def test_twin_is_fault_free(self, report):
        assert report.baseline.fault_accounting is None
        assert report.faulted.fault_accounting["frames_lost"] > 0

    def test_half_loss_hurts_delivery(self, report):
        assert report.delivery_retention < 1.0
        assert 0.0 < report.delivery_degradation <= 1.0
        assert (report.delivery_degradation
                == 1.0 - min(1.0, report.delivery_retention))

    def test_ratios_are_finite_and_nonnegative(self, report):
        assert report.cost_ratio >= 0.0
        assert report.forwardings_ratio >= 0.0


class TestRows:
    def test_rows_cover_metrics_and_ledger(self, report):
        rows = report.rows()
        names = [r[0] for r in rows]
        assert "delivery ratio" in names
        assert "delivery retention" in names
        assert "frames lost" in names  # ledger keys join the table
        assert all(len(r) == 3 for r in rows)

    def test_ledger_baseline_column_is_zero(self, report):
        for name, _, baseline in report.rows():
            if name.replace(" ", "_") in report.fault_accounting:
                assert baseline == 0


class TestGuards:
    def test_api_rejects_faultless_spec(self):
        trace = haggle_like(scale=0.01, seed=3)
        with pytest.raises(ValueError, match="enabled FaultSpec"):
            resilience(trace, ExperimentSpec())

    def test_report_function_rejects_disabled_faults(self):
        config = ExperimentConfig(faults=FaultSpec(), **CONFIG)
        with pytest.raises(ValueError, match="enabled FaultSpec"):
            resilience_report(haggle_like(scale=0.01, seed=3), "B-SUB", config)

    def test_zero_over_zero_reads_as_no_degradation(self):
        # The ratio convention: 0/0 -> 1.0 (nothing to lose, nothing lost).
        from repro.experiments.resilience import _ratio

        assert _ratio(0.0, 0.0) == 1.0
        assert _ratio(1.0, 0.0) == float("inf")
        assert _ratio(1.0, 2.0) == 0.5


def test_report_is_plain_dataclass_pair(report):
    assert isinstance(report, ResilienceReport)
    assert report.faulted.protocol == report.baseline.protocol == "B-SUB"
