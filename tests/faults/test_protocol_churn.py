"""B-SUB crash/recovery semantics (``on_node_crashed``/``on_node_recovered``).

The fault model: a crash loses RAM — message buffers, receipt sets,
copy budgets, and the broker flag always go.  ``mode="age"`` keeps the
relay filter (checkpointed to flash; it simply continues decaying via
its lazy-decay clock) while ``mode="wipe"`` loses that too.  The
genuine filter is always rebuilt from the node's interests: a user's
subscription list is durable configuration, not volatile state.
"""

from repro.pubsub.messages import Message
from repro.pubsub.metrics import MetricsCollector
from repro.pubsub.protocol import BsubConfig, BsubProtocol
from repro.traces.model import Contact, ContactTrace

INTERESTS = {
    0: frozenset({"alpha"}),
    1: frozenset({"beta"}),
    2: frozenset({"gamma"}),
}


def build_protocol(**overrides):
    config = BsubConfig(
        num_bits=64, num_hashes=2, decay_factor_per_min=0.1, **overrides
    )
    metrics = MetricsCollector(INTERESTS, "B-SUB")
    protocol = BsubProtocol(INTERESTS, metrics, config)
    trace = ContactTrace(
        [Contact.make(10.0, 60.0, 0, 1)], nodes=sorted(INTERESTS)
    )
    protocol.setup(trace)
    return protocol


def load_node(protocol, node=1):
    """Give *node* a relay entry, a buffered message, and the broker role."""
    state = protocol.states[node]
    state.relay.insert("hot-topic")
    message = Message.create("gamma", node, 20.0, 600.0, size_bytes=10)
    protocol.metrics.register_message(message)
    state.produce(message)
    protocol.election._is_broker[node] = True
    return state, message


class TestWipe:
    def test_volatile_state_lost(self):
        protocol = build_protocol()
        old_state, message = load_node(protocol)
        protocol.on_node_crashed(1, 50.0, mode="wipe")
        fresh = protocol.states[1]
        assert fresh is not old_state
        assert "hot-topic" not in fresh.relay
        assert len(fresh.own) == 0 and len(fresh.carried) == 0
        assert not fresh.has(message.id)
        assert fresh.copies_left == {}
        assert not protocol.election.is_broker(1)

    def test_genuine_filter_rebuilt_from_interests(self):
        protocol = build_protocol()
        load_node(protocol)
        protocol.on_node_crashed(1, 50.0, mode="wipe")
        fresh = protocol.states[1]
        assert "beta" in fresh.genuine          # durable subscription
        assert "beta" in fresh.genuine_bloom

    def test_relay_clock_restarts_at_crash_time(self):
        protocol = build_protocol()
        protocol.on_node_crashed(1, 500.0, mode="wipe")
        assert protocol.states[1].relay.time == 500.0


class TestAge:
    def test_relay_filter_survives(self):
        protocol = build_protocol()
        old_state, _ = load_node(protocol)
        old_relay = old_state.relay
        protocol.on_node_crashed(1, 50.0, mode="age")
        fresh = protocol.states[1]
        assert fresh.relay is old_relay
        assert "hot-topic" in fresh.relay

    def test_buffers_and_role_still_lost(self):
        protocol = build_protocol()
        _, message = load_node(protocol)
        protocol.on_node_crashed(1, 50.0, mode="age")
        fresh = protocol.states[1]
        assert len(fresh.own) == 0
        assert not fresh.has(message.id)
        assert not protocol.election.is_broker(1)

    def test_surviving_relay_keeps_decaying(self):
        protocol = build_protocol()
        state, _ = load_node(protocol)
        protocol.on_node_crashed(1, 50.0, mode="age")
        relay = protocol.states[1].relay
        # DF = 0.1/min and C = 50 -> fully decayed after 500 min; the
        # outage consumed simulated time like any other idle stretch.
        relay.advance(50.0 + 600 * 60.0)
        assert "hot-topic" not in relay


class TestEdgeCases:
    def test_unknown_node_is_noop(self):
        protocol = build_protocol()
        protocol.on_node_crashed(99, 50.0, mode="wipe")  # must not raise

    def test_recovered_is_noop(self):
        protocol = build_protocol()
        before = protocol.states[1]
        protocol.on_node_recovered(1, 80.0)
        assert protocol.states[1] is before

    def test_contact_works_after_crash(self):
        # The node must be bootable: a post-crash contact runs the full
        # Sec. V procedure against the fresh state without errors.
        protocol = build_protocol()
        load_node(protocol)
        protocol.on_node_crashed(1, 50.0, mode="wipe")
        from repro.dtn.bandwidth import ContactChannel

        contact = Contact.make(60.0, 60.0, 0, 1)
        protocol.on_contact(contact, ContactChannel(60.0, None), 60.0)

    def test_adaptive_df_controller_reset(self):
        from repro.pubsub.adaptive import AdaptiveDecayConfig

        protocol = build_protocol(adaptive_df=AdaptiveDecayConfig())
        before = protocol.df_controllers[1]
        protocol.on_node_crashed(1, 50.0, mode="wipe")
        assert protocol.df_controllers[1] is not before
