"""Tests for the decentralised broker election (paper Sec. V-B)."""

import pytest

from repro.pubsub.broker_allocation import (
    FIVE_HOURS_S,
    BrokerElection,
    StaticBrokerSet,
)


def election(**overrides):
    defaults = dict(
        nodes=range(10), lower_bound=2, upper_bound=4, window_s=1000.0
    )
    defaults.update(overrides)
    return BrokerElection(**defaults)


class TestBootstrap:
    def test_starts_with_no_brokers_by_default(self):
        assert election().brokers() == set()

    def test_initial_brokers_accepted(self):
        e = election(initial_brokers=[3, 4])
        assert e.brokers() == {3, 4}

    def test_initial_brokers_validated(self):
        with pytest.raises(ValueError, match="not in population"):
            election(initial_brokers=[99])

    def test_first_meetings_promote_brokers(self):
        """With zero brokers around, the lower-bound rule designates the
        nodes a user meets."""
        e = election()
        e.on_contact(0, 1, now=10.0)
        # each endpoint saw 0 brokers < T_l and designated the other
        assert e.brokers() == {0, 1}

    def test_promotions_counted(self):
        e = election()
        e.on_contact(0, 1, 10.0)
        assert e.promotions == 2


class TestLowerBound:
    def test_promotes_until_lower_bound_met(self):
        e = election(lower_bound=2, upper_bound=9)
        e.on_contact(0, 1, 1.0)  # 0 and 1 both become brokers
        e.on_contact(2, 3, 2.0)  # 2 and 3 become brokers
        # node 4 now meets broker 0: it has met 1 broker (<2) so it
        # promotes... but 0 is already a broker, so nothing changes,
        # and meeting normal node 5 next promotes 5.
        e.on_contact(4, 0, 3.0)
        assert e.is_broker(0)
        e.on_contact(4, 5, 4.0)
        assert e.is_broker(5)

    def test_no_promotion_when_enough_brokers(self):
        e = election(lower_bound=1, upper_bound=9)
        e.on_contact(0, 1, 1.0)  # 1 becomes broker (and 0)
        # node 2 meets broker 1, satisfying T_l=1; meeting 3 after must
        # not promote 3.
        e.on_contact(2, 1, 2.0)
        e.on_contact(2, 3, 3.0)
        assert not e.is_broker(3)

    def test_brokers_do_not_run_election(self):
        e = election(lower_bound=5, upper_bound=9, initial_brokers=[0])
        # broker 0 meets plain node 1: node 1 promotes nothing new
        # (it now met 1 broker < 5 -> it would promote the *next* node),
        # but 0 itself, despite meeting 0 brokers, must not promote 1.
        e.on_contact(0, 1, 1.0)
        # 1 met broker 0; count=1 < 5, but peer 0 is already a broker.
        assert e.brokers() == {0}


class TestUpperBound:
    def build_crowded(self):
        """Node 9 has met brokers 0..5 within the window."""
        e = election(
            nodes=range(10),
            lower_bound=1,
            upper_bound=3,
            window_s=10_000.0,
            initial_brokers=[0, 1, 2, 3, 4, 5],
        )
        # give the brokers unequal degrees: broker 0 meets many nodes
        for t, peer in enumerate((6, 7, 8), start=1):
            e.on_contact(0, peer, float(t))
        return e

    def test_demotes_low_degree_broker(self):
        e = self.build_crowded()
        # node 9 meets brokers 0..2: at most 3 brokers met, never above
        # T_u = 3, so nothing is demoted yet.
        for t, broker in enumerate((0, 1, 2), start=10):
            e.on_contact(9, broker, float(t))
        assert len(e.brokers()) == 6
        e.on_contact(9, 4, 20.0)  # 4 brokers met > T_u
        # broker 4 has degree 1 (only met node 9); the average over the
        # brokers node 9 knows includes broker 0's degree 4 -> demoted.
        assert not e.is_broker(4)
        assert e.demotions >= 1

    def test_high_degree_broker_survives(self):
        e = self.build_crowded()
        for t, broker in enumerate((1, 2, 3, 4), start=10):
            e.on_contact(9, broker, float(t))
        # meeting broker 0 (the best-connected) must not demote it
        e.on_contact(9, 0, 20.0)
        assert e.is_broker(0)


class TestWindow:
    def test_old_meetings_expire(self):
        e = election(lower_bound=1, upper_bound=9, window_s=100.0)
        e.on_contact(0, 1, 1.0)  # both promoted
        # long silence: at t=500 node 2's window is empty, so meeting
        # normal node 3 promotes it
        e.on_contact(2, 3, 500.0)
        assert e.is_broker(3)

    def test_degree_is_windowed(self):
        e = election(window_s=100.0)
        e.on_contact(0, 1, 1.0)
        e.on_contact(0, 2, 2.0)
        assert e.degree_of(0) == 2
        e.on_contact(0, 3, 200.0)  # first two meetings now outside W
        assert e.degree_of(0) == 1 + 0 + 1 or e.degree_of(0) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            election(lower_bound=-1)
        with pytest.raises(ValueError):
            election(lower_bound=5, upper_bound=2)
        with pytest.raises(ValueError):
            election(window_s=0)


class TestFractions:
    def test_broker_fraction(self):
        e = election(initial_brokers=[0, 1])
        assert e.broker_fraction() == 0.2

    def test_election_stabilises_on_synthetic_trace(self):
        """On a realistic trace the 3/5 thresholds should keep a
        moderate broker share (the paper reports ≈30 %)."""
        from repro.traces.synthetic import haggle_like

        trace = haggle_like(scale=0.05, seed=3)
        e = BrokerElection(
            trace.nodes, lower_bound=3, upper_bound=5, window_s=FIVE_HOURS_S
        )
        for contact in trace:
            e.on_contact(contact.a, contact.b, contact.start)
        assert 0.10 <= e.broker_fraction() <= 0.60


class TestStaticBrokerSet:
    def test_fixed_assignment(self):
        s = StaticBrokerSet(range(5), brokers=[1, 2])
        assert s.is_broker(1) and not s.is_broker(0)
        assert s.broker_fraction() == 0.4
        s.on_contact(0, 1, 5.0)  # no-op
        assert s.brokers() == {1, 2}

    def test_top_fraction(self):
        centrality = {0: 5.0, 1: 3.0, 2: 1.0, 3: 0.5}
        s = StaticBrokerSet.top_fraction(centrality, 0.5)
        assert s.brokers() == {0, 1}

    def test_validation(self):
        with pytest.raises(ValueError, match="outside population"):
            StaticBrokerSet(range(3), brokers=[7])
        with pytest.raises(ValueError):
            StaticBrokerSet.top_fraction({0: 1.0}, 0.0)
