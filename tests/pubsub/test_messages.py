"""Tests for pub-sub messages."""

import pytest

from repro.pubsub.messages import DEFAULT_COPY_LIMIT, MAX_MESSAGE_BYTES, Message


class TestCreate:
    def test_single_key_shortcut(self):
        m = Message.create("NewMoon", source=3, created_at=10.0, ttl_s=60.0)
        assert m.keys == frozenset({"NewMoon"})
        assert m.key == "NewMoon"

    def test_multi_key(self):
        m = Message.create(["a", "b"], source=0, created_at=0.0, ttl_s=1.0)
        assert m.keys == frozenset({"a", "b"})
        with pytest.raises(ValueError, match="keys"):
            m.key

    def test_unique_ids(self):
        a = Message.create("k", 0, 0.0, 1.0)
        b = Message.create("k", 0, 0.0, 1.0)
        assert a.id != b.id

    def test_paper_constants(self):
        assert MAX_MESSAGE_BYTES == 140
        assert DEFAULT_COPY_LIMIT == 3

    def test_rejects_empty_keys(self):
        with pytest.raises(ValueError):
            Message.create([], 0, 0.0, 1.0)
        with pytest.raises(ValueError):
            Message.create([""], 0, 0.0, 1.0)

    def test_rejects_bad_ttl_and_size(self):
        with pytest.raises(ValueError):
            Message.create("k", 0, 0.0, 0.0)
        with pytest.raises(ValueError):
            Message.create("k", 0, 0.0, 1.0, size_bytes=0)

    def test_default_size_is_twitter_limit(self):
        assert Message.create("k", 0, 0.0, 1.0).size_bytes == 140


class TestExpiry:
    def test_expires_at(self):
        m = Message.create("k", 0, created_at=100.0, ttl_s=60.0)
        assert m.expires_at == 160.0

    def test_expired(self):
        m = Message.create("k", 0, created_at=100.0, ttl_s=60.0)
        assert not m.expired(160.0)  # inclusive horizon
        assert m.expired(160.1)

    def test_matches(self):
        m = Message.create("a", 0, 0.0, 1.0)
        assert m.matches(frozenset({"a", "z"}))
        assert not m.matches(frozenset({"z"}))
        assert not m.matches(frozenset())

    def test_immutable(self):
        m = Message.create("k", 0, 0.0, 1.0)
        with pytest.raises(AttributeError):
            m.source = 5
