"""Incremental decoding: the leftover-buffer contract and StreamDecoder.

The broker feeds socket reads straight into :class:`StreamDecoder`, so
this is the layer that turns "TCP is a byte stream" back into frames.
The contract under test: frames split across arbitrary chunk
boundaries decode identically to one contiguous buffer; resumable
truncation is silent steady state; any non-resumable problem poisons
the stream permanently.
"""

import pytest

from repro.core.hashing import HashFamily
from repro.core.tcbf import TemporalCountingBloomFilter
from repro.pubsub.messages import Message
from repro.pubsub.wire import (
    RESUMABLE_REASONS,
    Hello,
    InterestAnnouncement,
    MessageBundle,
    StreamDecoder,
    Subscribe,
    decode_frames,
    encode_frame,
)


@pytest.fixture
def family():
    return HashFamily(num_hashes=4, num_bits=256)


def sample_frames(family):
    tcbf = TemporalCountingBloomFilter(
        family=family, initial_value=50.0, decay_factor=0.0
    )
    tcbf.insert("NewMoon")
    message = Message.create("NewMoon", source=3, created_at=1.0,
                             ttl_s=600.0, size_bytes=5)
    return [
        Hello(node_id=7, is_broker=False, degree=2, time=1.0),
        Subscribe(("NewMoon", "H1N1")),
        InterestAnnouncement(tcbf),
        MessageBundle((message,), (b"hello",)),
    ]


def feed_all(decoder, blob, chunk_size):
    frames = []
    for start in range(0, len(blob), chunk_size):
        result = decoder.feed(blob[start:start + chunk_size])
        assert result.error is None
        frames.extend(result.frames)
    return frames


class TestDecodeFramesContract:
    def test_consumed_lands_on_frame_boundary(self, family):
        blob = b"".join(encode_frame(f) for f in sample_frames(family))
        # Cut mid-way through the last frame.
        cut = blob[: len(blob) - 3]
        result = decode_frames(cut, family, 50.0)
        assert result.error is not None
        assert result.error.reason in RESUMABLE_REASONS
        assert len(result.frames) == 3
        # The documented carry-forward: buffer[consumed:] + next read
        # must complete the stream.
        rest = cut[result.consumed:] + blob[len(blob) - 3:]
        result2 = decode_frames(rest, family, 50.0)
        assert result2.ok and len(result2.frames) == 1

    def test_max_body_len_rejects_declared_oversize(self, family):
        blob = encode_frame(Hello(1, False, 0, 0.0))
        result = decode_frames(blob, family, 50.0, max_body_len=4)
        assert result.error is not None
        assert result.error.reason == "oversized_body"
        assert result.error.reason not in RESUMABLE_REASONS

    def test_oversized_rejected_before_waiting_for_bytes(self, family):
        # Header declaring 4 GiB with no body present: must be rejected
        # as oversized, not reported as resumable truncation.
        import struct
        header = struct.pack("<BI", 0x10, 0xFFFFFFFF)
        result = decode_frames(header, family, 50.0, max_body_len=1 << 20)
        assert result.error.reason == "oversized_body"


class TestStreamDecoder:
    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 7, 64, 10_000])
    def test_arbitrary_chunking_equals_contiguous(self, family, chunk_size):
        frames = sample_frames(family)
        blob = b"".join(encode_frame(f) for f in frames)
        decoder = StreamDecoder(family, 50.0)
        decoded = feed_all(decoder, blob, chunk_size)
        assert len(decoded) == len(frames)
        assert [type(f) for f in decoded] == [type(f) for f in frames]
        assert decoder.at_boundary
        assert decoder.pending == 0
        assert decoder.frames_decoded == len(frames)
        assert decoder.bytes_fed == len(blob)

    def test_coalesced_frames_in_one_chunk(self, family):
        frames = sample_frames(family)
        blob = b"".join(encode_frame(f) for f in frames)
        result = StreamDecoder(family, 50.0).feed(blob)
        assert result.error is None
        assert len(result.frames) == len(frames)

    def test_mid_frame_state_is_not_an_error(self, family):
        blob = encode_frame(Subscribe(("alpha", "beta")))
        decoder = StreamDecoder(family, 50.0)
        result = decoder.feed(blob[:4])
        assert result.error is None and result.frames == ()
        assert not decoder.at_boundary
        assert decoder.pending == 4
        result = decoder.feed(blob[4:])
        assert result.frames[0] == Subscribe(("alpha", "beta"))
        assert decoder.at_boundary

    def test_unknown_type_byte_is_fatal(self, family):
        decoder = StreamDecoder(family, 50.0)
        result = decoder.feed(b"\xee\x00\x00\x00\x00")
        assert result.error is not None
        assert result.error.reason == "unknown_frame_type"
        assert decoder.fatal is result.error

    def test_fatal_stream_stays_poisoned(self, family):
        decoder = StreamDecoder(family, 50.0)
        decoder.feed(b"\xee\x00\x00\x00\x00")
        # Even a perfectly valid frame cannot revive the stream: there
        # is no resynchronisation in a length-prefixed format.
        result = decoder.feed(encode_frame(Hello(1, False, 0, 0.0)))
        assert result.frames == ()
        assert result.error.reason == "unknown_frame_type"
        assert decoder.pending == 0

    def test_oversized_declared_length_is_fatal(self, family):
        import struct
        decoder = StreamDecoder(family, 50.0, max_frame_bytes=128)
        result = decoder.feed(struct.pack("<BI", 0x14, 1 << 30))
        assert result.error.reason == "oversized_body"
        assert decoder.fatal is not None

    def test_interleaved_valid_then_fatal(self, family):
        frames = sample_frames(family)
        blob = b"".join(encode_frame(f) for f in frames)
        decoder = StreamDecoder(family, 50.0)
        result = decoder.feed(blob + b"\xee\x00\x00\x00\x00")
        # Every complete valid frame before the poison byte decodes.
        assert len(result.frames) == len(frames)
        assert result.error.reason == "unknown_frame_type"

    def test_frame_split_across_three_reads(self, family):
        blob = encode_frame(Hello(9, True, 4, 2.5))
        decoder = StreamDecoder(family, 50.0)
        third = len(blob) // 3
        assert decoder.feed(blob[:third]).frames == ()
        assert decoder.feed(blob[third:2 * third]).frames == ()
        frames = decoder.feed(blob[2 * third:]).frames
        assert frames == (Hello(9, True, 4, 2.5),)

    def test_max_frame_bytes_validation(self, family):
        with pytest.raises(ValueError, match="max_frame_bytes"):
            StreamDecoder(family, 50.0, max_frame_bytes=0)
