"""Tests for the evaluation metrics (paper Sec. VII definitions)."""

import math

import pytest

from repro.pubsub.messages import Message
from repro.pubsub.metrics import MetricsCollector


@pytest.fixture
def interests():
    return {
        0: frozenset({"a"}),
        1: frozenset({"a"}),
        2: frozenset({"b"}),
        3: frozenset({"c"}),
    }


@pytest.fixture
def collector(interests):
    return MetricsCollector(interests, "test-protocol")


def msg(key="a", source=3, created_at=0.0, ttl=1000.0):
    return Message.create(key, source, created_at, ttl)


class TestRegistration:
    def test_intended_recipients_exclude_source(self, collector):
        m = msg(key="a", source=0)  # node 0 also likes "a"
        collector.register_message(m)
        assert collector.num_intended_pairs == 1  # only node 1

    def test_double_registration_rejected(self, collector):
        m = msg()
        collector.register_message(m)
        with pytest.raises(ValueError, match="twice"):
            collector.register_message(m)

    def test_message_with_no_consumers(self, collector):
        m = msg(key="unwanted")
        collector.register_message(m)
        assert collector.num_intended_pairs == 0


class TestDeliveries:
    def test_intended_delivery(self, collector):
        m = msg(key="a", created_at=10.0)
        collector.register_message(m)
        assert collector.record_delivery(m, node=0, now=70.0)
        summary = collector.summary()
        assert summary.num_intended_deliveries == 1
        assert summary.mean_delay_s == 60.0

    def test_false_delivery(self, collector):
        m = msg(key="a")
        collector.register_message(m)
        collector.record_delivery(m, node=2, now=5.0)  # node 2 wants "b"
        summary = collector.summary()
        assert summary.num_false_deliveries == 1
        assert summary.false_positive_ratio == 1.0

    def test_duplicate_delivery_ignored(self, collector):
        m = msg(key="a")
        collector.register_message(m)
        assert collector.record_delivery(m, 0, 1.0)
        assert not collector.record_delivery(m, 0, 2.0)
        assert collector.summary().num_deliveries == 1

    def test_unregistered_message_rejected(self, collector):
        with pytest.raises(ValueError, match="never registered"):
            collector.record_delivery(msg(), 0, 1.0)

    def test_was_delivered_to(self, collector):
        m = msg(key="a")
        collector.register_message(m)
        collector.record_delivery(m, 0, 1.0)
        assert collector.was_delivered_to(m, 0)
        assert not collector.was_delivered_to(m, 1)


class TestSummary:
    def test_delivery_ratio_over_pairs(self, collector):
        m1, m2 = msg(key="a"), msg(key="a")
        collector.register_message(m1)  # 2 intended pairs each
        collector.register_message(m2)
        collector.record_delivery(m1, 0, 1.0)
        summary = collector.summary()
        assert summary.num_intended_pairs == 4
        assert summary.delivery_ratio == 0.25

    def test_forwardings_per_delivered(self, collector):
        m = msg(key="a")
        collector.register_message(m)
        collector.record_forwarding(m)
        collector.record_forwarding(m, count=4)
        collector.record_delivery(m, 0, 1.0)
        assert collector.summary().forwardings_per_delivered == 5.0

    def test_delay_statistics(self, collector):
        m1 = msg(key="a", created_at=0.0)
        m2 = msg(key="a", created_at=0.0)
        for m in (m1, m2):
            collector.register_message(m)
        collector.record_delivery(m1, 0, 10.0)
        collector.record_delivery(m1, 1, 20.0)
        collector.record_delivery(m2, 0, 90.0)
        summary = collector.summary()
        assert summary.mean_delay_s == 40.0
        assert summary.median_delay_s == 20.0
        assert summary.mean_delay_min == pytest.approx(40.0 / 60.0)

    def test_false_deliveries_excluded_from_delay(self, collector):
        m = msg(key="a", created_at=0.0)
        collector.register_message(m)
        collector.record_delivery(m, 2, 500.0)  # false
        collector.record_delivery(m, 0, 10.0)  # intended
        assert collector.summary().mean_delay_s == 10.0

    def test_empty_run(self, collector):
        summary = collector.summary()
        assert math.isnan(summary.delivery_ratio)
        assert math.isnan(summary.mean_delay_s)
        assert summary.false_positive_ratio == 0.0
        assert summary.num_messages == 0

    def test_fpr_mixes_true_and_false(self, collector):
        m = msg(key="a")
        collector.register_message(m)
        collector.record_delivery(m, 0, 1.0)
        collector.record_delivery(m, 1, 1.0)
        collector.record_delivery(m, 2, 1.0)  # false
        assert collector.summary().false_positive_ratio == pytest.approx(1 / 3)

    def test_protocol_name_carried(self, collector):
        assert collector.summary().protocol == "test-protocol"

    def test_negative_forwarding_count_rejected(self, collector):
        m = msg()
        collector.register_message(m)
        with pytest.raises(ValueError):
            collector.record_forwarding(m, count=-1)
