"""Property/fuzz tests for the hardened wire codec.

The fault layer can hand ``decode_frames`` any damaged byte string —
truncated at an arbitrary point, bit-flipped, or outright garbage — so
the decoder's contract is: *never raise*, never read past a declared
length, and always return the cleanly decoded prefix plus a structured
:class:`FrameError`.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bloom import BloomFilter
from repro.core.hashing import HashFamily
from repro.core.tcbf import TemporalCountingBloomFilter
from repro.pubsub.messages import Message
from repro.pubsub.wire import (
    FilterRequest,
    Hello,
    InterestAnnouncement,
    MessageBundle,
    RelayFilter,
    decode_frames,
    encode_frame,
)

FAMILY = HashFamily(4, 256, seed=1)
INITIAL_VALUE = 50.0

_keys = st.lists(
    st.text(
        alphabet=st.characters(blacklist_categories=("Cs",)),
        min_size=1,
        max_size=12,
    ),
    min_size=1,
    max_size=4,
    unique=True,
)


@st.composite
def hello_frames(draw):
    return Hello(
        node_id=draw(st.integers(0, 2**31 - 1)),
        is_broker=draw(st.booleans()),
        degree=draw(st.integers(0, 2**31 - 1)),
        time=draw(st.floats(0, 1e9)),
    )


@st.composite
def interest_frames(draw):
    tcbf = TemporalCountingBloomFilter.of(
        draw(_keys), family=FAMILY, initial_value=INITIAL_VALUE
    )
    return InterestAnnouncement(tcbf)


@st.composite
def relay_frames(draw):
    relay = TemporalCountingBloomFilter(
        family=FAMILY, initial_value=INITIAL_VALUE
    )
    for keys in draw(st.lists(_keys, min_size=0, max_size=3)):
        relay.a_merge(
            TemporalCountingBloomFilter.of(
                keys, family=FAMILY, initial_value=INITIAL_VALUE
            )
        )
    return RelayFilter(relay)


@st.composite
def request_frames(draw):
    return FilterRequest(BloomFilter.of(draw(_keys), family=FAMILY))


@st.composite
def bundle_frames(draw):
    sizes = draw(st.lists(st.integers(1, 60), min_size=0, max_size=3))
    messages = tuple(
        Message.create(f"key-{i}", i, float(i), 600.0, size_bytes=size)
        for i, size in enumerate(sizes)
    )
    return MessageBundle(messages, tuple(bytes(size) for size in sizes))


any_frame = st.one_of(
    hello_frames(),
    interest_frames(),
    relay_frames(),
    request_frames(),
    bundle_frames(),
)


def decode(blob: bytes):
    return decode_frames(blob, FAMILY, INITIAL_VALUE)


@given(frames=st.lists(any_frame, min_size=1, max_size=4))
@settings(max_examples=60, deadline=None)
def test_every_frame_type_roundtrips(frames):
    blob = b"".join(encode_frame(f) for f in frames)
    result = decode(blob)
    assert result.ok
    assert result.consumed == len(blob)
    assert [type(f) for f in result] == [type(f) for f in frames]
    # Hello and MessageBundle round-trip exactly; filter frames are
    # compared by behaviour elsewhere (float quantisation).
    for original, decoded in zip(frames, result):
        if isinstance(original, (Hello, MessageBundle)):
            assert decoded == original


@given(
    frames=st.lists(any_frame, min_size=1, max_size=3),
    data=st.data(),
)
@settings(max_examples=80, deadline=None)
def test_truncation_never_raises_and_keeps_prefix(frames, data):
    encoded = [encode_frame(f) for f in frames]
    blob = b"".join(encoded)
    cut = data.draw(st.integers(0, len(blob) - 1), label="cut")
    result = decode(blob[:cut])
    # Whole frames before the cut decode; the remainder is an error,
    # except when the cut lands exactly on a frame boundary.
    boundaries = [0]
    for part in encoded:
        boundaries.append(boundaries[-1] + len(part))
    whole = sum(1 for b in boundaries[1:] if b <= cut)
    assert len(result) == whole
    if cut in boundaries:
        assert result.ok
    else:
        assert result.error is not None
        assert result.error.reason in (
            "truncated_header", "truncated_body", "bad_body"
        )
    assert result.consumed <= cut


@given(
    frames=st.lists(any_frame, min_size=1, max_size=2),
    data=st.data(),
)
@settings(max_examples=80, deadline=None)
def test_bitflips_never_raise(frames, data):
    blob = bytearray(b"".join(encode_frame(f) for f in frames))
    num_flips = data.draw(st.integers(1, 4), label="num_flips")
    for _ in range(num_flips):
        index = data.draw(st.integers(0, len(blob) - 1), label="index")
        blob[index] ^= data.draw(st.integers(1, 255), label="mask")
    result = decode(bytes(blob))  # must not raise
    assert result.consumed <= len(blob)
    assert (result.error is None) == result.ok


@given(garbage=st.binary(min_size=0, max_size=300))
@settings(max_examples=120, deadline=None)
def test_raw_garbage_never_raises(garbage):
    result = decode(garbage)
    assert result.consumed <= len(garbage)
    if garbage and result.ok:
        # A clean parse of random bytes must have consumed everything.
        assert result.consumed == len(garbage)


@given(declared=st.integers(1, 2**31 - 1), available=st.integers(0, 64))
@settings(max_examples=60, deadline=None)
def test_declared_overrun_rejected_without_overread(declared, available):
    if available >= declared:
        available = declared - 1 if declared > 0 else 0
    blob = bytes([0x10]) + declared.to_bytes(4, "little") + bytes(available)
    result = decode(blob)
    assert list(result) == []
    assert result.error.reason == "truncated_body"
    assert result.consumed == 0


def test_empty_input_is_clean():
    result = decode(b"")
    assert result.ok and list(result) == [] and result.consumed == 0


@pytest.mark.parametrize("type_byte", [0x00, 0x0F, 0x15, 0xFF])
def test_unknown_type_bytes_reported(type_byte):
    blob = bytes([type_byte]) + (0).to_bytes(4, "little")
    result = decode(blob)
    assert result.error is not None
    assert result.error.reason == "unknown_frame_type"
    assert result.error.frame_type == type_byte
