"""Tests for per-node B-SUB state."""

import pytest

from repro.pubsub.messages import Message
from repro.pubsub.node import BsubNodeState, KeyedBuffer


def msg(key="a", source=0, created_at=0.0, ttl=100.0):
    return Message.create(key, source, created_at, ttl)


def node(family, interests=("a",), copy_limit=3, decay=0.0):
    return BsubNodeState(
        node_id=0,
        interests=frozenset(interests),
        family=family,
        initial_value=50.0,
        decay_factor=decay,
        copy_limit=copy_limit,
    )


class TestKeyedBuffer:
    def test_add_and_lookup(self):
        buf = KeyedBuffer()
        m = msg("a")
        buf.add(m)
        assert m.id in buf
        assert len(buf) == 1
        assert buf.ids_for("a") == (m.id,)

    def test_add_idempotent(self):
        buf = KeyedBuffer()
        m = msg("a")
        buf.add(m)
        buf.add(m)
        assert len(buf) == 1

    def test_remove_cleans_index(self):
        buf = KeyedBuffer()
        m = msg("a")
        buf.add(m)
        assert buf.remove(m.id)
        assert buf.ids_for("a") == ()
        assert list(buf.keys()) == []
        assert not buf.remove(m.id)

    def test_multi_key_indexed_under_each(self):
        buf = KeyedBuffer()
        m = Message.create(["a", "b"], 0, 0.0, 100.0)
        buf.add(m)
        assert buf.ids_for("a") == (m.id,)
        assert buf.ids_for("b") == (m.id,)
        buf.remove(m.id)
        assert buf.ids_for("b") == ()

    def test_ids_sorted(self):
        buf = KeyedBuffer()
        messages = [msg("a") for _ in range(5)]
        for m in reversed(messages):
            buf.add(m)
        assert buf.ids_for("a") == tuple(sorted(m.id for m in messages))

    def test_iter(self):
        buf = KeyedBuffer()
        m1, m2 = msg("a"), msg("b")
        buf.add(m1)
        buf.add(m2)
        assert {m.id for m in buf} == {m1.id, m2.id}


class TestNodeState:
    def test_genuine_filter_holds_interests(self, family):
        state = node(family, interests=("a", "b"))
        assert "a" in state.genuine
        assert "b" in state.genuine
        assert set(state.genuine_bloom.set_bits) == set(state.genuine)

    def test_produce_and_copies(self, family):
        state = node(family, copy_limit=2)
        m = msg()
        state.produce(m)
        assert state.has(m.id)
        assert state.copies_left[m.id] == 2

    def test_consume_copy_until_removal(self, family):
        state = node(family, copy_limit=2)
        m = msg()
        state.produce(m)
        state.consume_copy(m.id)
        assert m.id in state.own
        state.consume_copy(m.id)
        assert m.id not in state.own
        assert m.id not in state.copies_left

    def test_carry_and_drop(self, family):
        state = node(family)
        m = msg()
        state.carry(m)
        assert state.has(m.id)
        state.drop_carried(m.id)
        assert not state.has(m.id)

    def test_received_counts_as_has(self, family):
        state = node(family)
        m = msg()
        state.mark_received(m.id)
        assert state.has(m.id)

    def test_purge_expired(self, family):
        state = node(family)
        fresh = msg(created_at=0.0, ttl=1000.0)
        stale = msg(created_at=0.0, ttl=10.0)
        state.produce(stale)
        state.carry(fresh)
        dropped = state.purge_expired(now=50.0)
        assert dropped == 1
        assert stale.id not in state.own
        # 'has' stays true: a producer never re-accepts its own message
        assert state.has(stale.id)
        assert state.has(fresh.id)

    def test_purge_is_idempotent(self, family):
        state = node(family)
        m = msg(ttl=10.0)
        state.produce(m)
        state.purge_expired(50.0)
        assert state.purge_expired(60.0) == 0

    def test_buffered_messages_and_keys(self, family):
        state = node(family)
        own = msg("a")
        carried = msg("b")
        state.produce(own)
        state.carry(carried)
        assert {m.id for m in state.buffered_messages()} == {own.id, carried.id}
        assert state.buffered_keys() == {"a", "b"}

    def test_interested_in_exact_matching(self, family):
        state = node(family, interests=("a",))
        assert state.interested_in(msg("a"))
        assert not state.interested_in(msg("z"))

    def test_relay_filter_decays(self, family):
        from repro.core.tcbf import TemporalCountingBloomFilter

        state = node(family, decay=1.0)
        announcement = TemporalCountingBloomFilter.of(
            ["x"], family=family, initial_value=10
        )
        state.relay.a_merge(announcement)
        assert "x" in state.relay
        state.relay.advance(11.0)
        assert "x" not in state.relay

    def test_genuine_filter_never_decays(self, family):
        state = node(family, interests=("a",), decay=1.0)
        state.genuine.advance(10_000.0)
        assert "a" in state.genuine

    def test_copy_limit_validation(self, family):
        with pytest.raises(ValueError):
            node(family, copy_limit=-1)
