"""Tests for bounded buffers and eviction policies."""

import pytest

from repro.pubsub.baselines import PushProtocol, _Buffer
from repro.pubsub.messages import Message
from repro.pubsub.node import BsubNodeState


def msg(key="k", ttl=100.0, created=0.0):
    return Message.create(key, 0, created, ttl)


def node(family, capacity=None, eviction="oldest"):
    return BsubNodeState(
        node_id=0,
        interests=frozenset(),
        family=family,
        initial_value=50.0,
        decay_factor=0.0,
        copy_limit=3,
        carried_capacity=capacity,
        eviction=eviction,
    )


class TestBaselineBuffer:
    def test_unbounded_by_default(self):
        buf = _Buffer()
        for i in range(100):
            buf.add(msg())
        assert len(buf) == 100

    def test_capacity_evicts_earliest_expiry(self):
        buf = _Buffer(capacity=2)
        doomed = msg(ttl=10.0)
        survivor = msg(ttl=1000.0)
        newcomer = msg(ttl=500.0)
        buf.add(doomed)
        buf.add(survivor)
        buf.add(newcomer)
        assert len(buf) == 2
        assert doomed.id not in buf
        assert survivor.id in buf and newcomer.id in buf
        assert buf.evictions == 1

    def test_re_add_existing_does_not_evict(self):
        buf = _Buffer(capacity=1)
        m = msg()
        buf.add(m)
        buf.add(m)
        assert buf.evictions == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            _Buffer(capacity=0)


class TestNodeCarriedCapacity:
    def test_oldest_eviction(self, family):
        state = node(family, capacity=2, eviction="oldest")
        doomed = msg(ttl=10.0)
        state.carry(doomed)
        state.carry(msg(ttl=1000.0))
        assert state.carry(msg(ttl=500.0))
        assert len(state.carried) == 2
        assert doomed.id not in state.carried
        assert state.evictions == 1

    def test_reject_policy(self, family):
        state = node(family, capacity=1, eviction="reject")
        state.carry(msg())
        assert not state.carry(msg())
        assert len(state.carried) == 1
        assert state.rejected_carries == 1

    def test_can_accept_carry(self, family):
        reject = node(family, capacity=1, eviction="reject")
        first = msg()
        reject.carry(first)
        assert reject.can_accept_carry(first.id)  # already held
        assert not reject.can_accept_carry(msg().id)
        oldest = node(family, capacity=1, eviction="oldest")
        oldest.carry(msg())
        assert oldest.can_accept_carry(msg().id)  # eviction makes room

    def test_unbounded_always_accepts(self, family):
        state = node(family, capacity=None)
        assert state.can_accept_carry(123)

    def test_validation(self, family):
        with pytest.raises(ValueError):
            node(family, capacity=0)
        with pytest.raises(ValueError):
            node(family, eviction="random")


class TestEndToEnd:
    def test_push_capacity_hurts_delivery(self):
        """Tiny epidemic buffers must lose messages versus unbounded."""
        from repro.experiments import ExperimentConfig, run_experiment
        from repro.traces.synthetic import haggle_like

        trace = haggle_like(scale=0.03, seed=14)
        base = dict(ttl_min=600.0, min_rate_per_s=1 / 3600.0)
        unbounded = run_experiment(
            trace, "PUSH", ExperimentConfig(**base)
        )
        starved = run_experiment(
            trace, "PUSH", ExperimentConfig(push_buffer_capacity=5, **base)
        )
        assert (
            starved.summary.delivery_ratio < unbounded.summary.delivery_ratio
        )

    def test_bsub_runs_with_bounded_brokers(self):
        from repro.experiments import ExperimentConfig, run_experiment
        from repro.traces.synthetic import haggle_like

        trace = haggle_like(scale=0.03, seed=14)
        result = run_experiment(
            trace,
            "B-SUB",
            ExperimentConfig(
                ttl_min=600.0,
                min_rate_per_s=1 / 3600.0,
                carried_capacity=20,
                eviction="oldest",
            ),
        )
        assert result.summary.num_messages > 0
        assert 0.0 <= result.summary.delivery_ratio <= 1.0
