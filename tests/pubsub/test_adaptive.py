"""Tests for the Sec. VI-B online DF adaptation."""

import pytest

from repro.core.allocation import TCBFCollection
from repro.core.hashing import HashFamily
from repro.core.tcbf import TemporalCountingBloomFilter
from repro.pubsub.adaptive import AdaptiveDecayConfig, AdaptiveDecayController


@pytest.fixture
def family():
    return HashFamily(4, 64, seed=50)


def controller(initial=0.01, **overrides):
    defaults = dict(target_fpr=0.02, interval_s=100.0)
    defaults.update(overrides)
    return AdaptiveDecayController(AdaptiveDecayConfig(**defaults), initial)


def crowded_relay(family, keys=40):
    relay = TemporalCountingBloomFilter(
        family=family, initial_value=50.0, decay_factor=0.01
    )
    relay.a_merge(
        TemporalCountingBloomFilter.of(
            [f"k{i}" for i in range(keys)], family=family, initial_value=50.0
        )
    )
    return relay


class TestConfigValidation:
    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            AdaptiveDecayConfig(target_fpr=0.0)
        with pytest.raises(ValueError):
            AdaptiveDecayConfig(target_fpr=1.0)

    def test_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            AdaptiveDecayConfig(adjust_factor=1.0)

    def test_rejects_bad_clamps(self):
        with pytest.raises(ValueError):
            AdaptiveDecayConfig(min_df_per_s=0.5, max_df_per_s=0.1)

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            AdaptiveDecayConfig(interval_s=0.0)


class TestEstimateFpr:
    def test_empty_filter_zero(self, family):
        relay = TemporalCountingBloomFilter(family=family, initial_value=50)
        assert AdaptiveDecayController.estimate_fpr(relay) == 0.0

    def test_equals_fill_ratio_power_k(self, family):
        relay = crowded_relay(family, keys=8)
        expected = relay.fill_ratio() ** relay.num_hashes
        assert AdaptiveDecayController.estimate_fpr(relay) == pytest.approx(expected)

    def test_collection_joint(self, family):
        coll = TCBFCollection(
            fill_ratio_threshold=0.3, family=family, initial_value=50.0
        )
        coll.a_merge(
            TemporalCountingBloomFilter.of(
                [f"k{i}" for i in range(10)], family=family, initial_value=50.0
            )
        )
        single = coll.filters[0].fill_ratio() ** 4
        assert AdaptiveDecayController.estimate_fpr(coll) == pytest.approx(
            single, rel=1e-9
        )


class TestAdjustment:
    def test_raises_df_when_fpr_high(self, family):
        ctrl = controller(initial=0.01)
        relay = crowded_relay(family)  # 40 keys in 64 bits: FPR ~ 1
        before = ctrl.df_per_s
        assert ctrl.observe(relay, now=0.0)
        assert ctrl.df_per_s > before
        assert relay.decay_factor == ctrl.df_per_s

    def test_lowers_df_when_fpr_low(self, family):
        ctrl = controller(initial=0.01)
        relay = TemporalCountingBloomFilter(
            family=family, initial_value=50.0, decay_factor=0.01
        )
        assert ctrl.observe(relay, now=0.0)  # empty relay -> FPR 0 < target
        assert ctrl.df_per_s < 0.01

    def test_within_band_no_change(self, family):
        # pick a relay whose estimated FPR lands inside the band
        relay = crowded_relay(family, keys=3)
        fpr = AdaptiveDecayController.estimate_fpr(relay)
        ctrl = controller(initial=0.01, target_fpr=fpr, band=0.5)
        assert not ctrl.observe(relay, now=0.0)

    def test_interval_throttles(self, family):
        ctrl = controller(initial=0.01, interval_s=1000.0)
        relay = crowded_relay(family)
        assert ctrl.observe(relay, now=0.0)
        assert not ctrl.observe(relay, now=500.0)  # too soon
        assert ctrl.observe(relay, now=1500.0)

    def test_clamped_at_max(self, family):
        ctrl = controller(initial=9.9, max_df_per_s=10.0)
        relay = crowded_relay(family)
        ctrl.observe(relay, now=0.0)
        assert ctrl.df_per_s == 10.0
        # at the clamp, further observations change nothing
        assert not ctrl.observe(relay, now=10_000.0)

    def test_adjustment_counter(self, family):
        ctrl = controller(initial=0.01)
        relay = crowded_relay(family)
        ctrl.observe(relay, now=0.0)
        ctrl.observe(relay, now=1_000.0)
        assert ctrl.adjustments == 2

    def test_applies_to_collection(self, family):
        ctrl = controller(initial=0.01)
        coll = TCBFCollection(
            fill_ratio_threshold=0.2, family=family, initial_value=50.0,
            decay_factor=0.01,
        )
        coll.a_merge(
            TemporalCountingBloomFilter.of(
                [f"k{i}" for i in range(40)], family=family, initial_value=50.0
            )
        )
        assert ctrl.observe(coll, now=0.0)
        assert all(f.decay_factor == ctrl.df_per_s for f in coll.filters)


class TestProtocolIntegration:
    def test_adaptive_run_completes_and_adjusts(self):
        from repro.experiments import ExperimentConfig, run_experiment
        from repro.traces.synthetic import haggle_like

        trace = haggle_like(scale=0.02, seed=12)
        config = ExperimentConfig(
            ttl_min=300.0,
            min_rate_per_s=1 / 7200.0,
            decay_factor_per_min=0.1,
            adaptive_df=AdaptiveDecayConfig(target_fpr=0.01, interval_s=600.0),
        )
        result = run_experiment(trace, "B-SUB", config)
        assert result.summary.num_messages > 0

    def test_controllers_attached_per_node(self, family):
        from repro.dtn.simulator import Simulation
        from repro.pubsub.metrics import MetricsCollector
        from repro.pubsub.protocol import BsubConfig, BsubProtocol
        from tests.conftest import make_trace

        trace = make_trace([(10.0, 5.0, 0, 1)])
        interests = {0: frozenset({"a"}), 1: frozenset()}
        protocol = BsubProtocol(
            interests,
            MetricsCollector(interests, "B-SUB"),
            BsubConfig(adaptive_df=AdaptiveDecayConfig()),
        )
        Simulation(trace, protocol, [], rate_bps=None).run()
        assert set(protocol.df_controllers) == {0, 1}
