"""Tests for the B-SUB protocol on hand-crafted contact scenarios."""

import pytest

from repro.dtn.events import MessageEvent
from repro.dtn.simulator import Simulation
from repro.pubsub.messages import Message
from repro.pubsub.metrics import MetricsCollector
from repro.pubsub.protocol import BsubConfig, BsubProtocol

from ..conftest import make_trace


def build(interests, brokers, trace, messages=(), df_per_min=0.0, **config_overrides):
    """Run B-SUB with pinned brokers; returns (protocol, metrics)."""
    config = BsubConfig(
        static_brokers=tuple(brokers),
        decay_factor_per_min=df_per_min,
        **config_overrides,
    )
    metrics = MetricsCollector(interests, "B-SUB")
    protocol = BsubProtocol(interests, metrics, config)
    events = [
        MessageEvent(t, node, Message.create(key, node, t, ttl))
        for (t, node, key, ttl) in messages
    ]
    Simulation(trace, protocol, events, rate_bps=None).run()
    return protocol, metrics


def interests_for(num_nodes, overrides=None):
    interests = {n: frozenset() for n in range(num_nodes)}
    for node, keys in (overrides or {}).items():
        interests[node] = frozenset(keys)
    return interests


class TestInterestPropagation:
    def test_consumer_uploads_genuine_filter_to_broker(self):
        trace = make_trace([(100.0, 10.0, 0, 1)])
        interests = interests_for(2, {0: {"NewMoon"}})
        protocol, _ = build(interests, brokers=[1], trace=trace)
        relay = protocol.states[1].relay
        assert "NewMoon" in relay
        assert relay.min_counter("NewMoon") == 50.0

    def test_repeat_meetings_reinforce_counters(self):
        """Sec. V-C: more frequent meetings -> higher counters (A-merge)."""
        trace = make_trace(
            [(100.0, 10.0, 0, 1), (200.0, 10.0, 0, 1), (300.0, 10.0, 0, 1)]
        )
        interests = interests_for(2, {0: {"k"}})
        protocol, _ = build(interests, brokers=[1], trace=trace)
        assert protocol.states[1].relay.min_counter("k") == 150.0

    def test_plain_user_never_builds_relay_state(self):
        trace = make_trace([(100.0, 10.0, 0, 1)])
        interests = interests_for(2, {0: {"k"}, 1: {"j"}})
        protocol, _ = build(interests, brokers=[], trace=trace)
        assert protocol.states[0].relay.is_empty()
        assert protocol.states[1].relay.is_empty()

    def test_brokers_m_merge_relay_filters(self):
        """Broker-broker merges take the max, not the sum."""
        trace = make_trace(
            [
                (100.0, 10.0, 0, 1),  # consumer 0 -> broker 1 (counter 50)
                (200.0, 10.0, 1, 2),  # brokers 1 and 2 merge relays
            ]
        )
        interests = interests_for(3, {0: {"k"}})
        protocol, _ = build(interests, brokers=[1, 2], trace=trace)
        assert protocol.states[2].relay.min_counter("k") == 50.0  # max, not 100

    def test_fig6_a_merge_ablation_inflates_counters(self):
        """With the Fig. 6 pathological A-merge between brokers, two
        brokers meeting repeatedly inflate each other's counters."""
        contacts = [(100.0, 10.0, 0, 1)]  # consumer seeds broker 1
        contacts += [(200.0 + 50 * i, 10.0, 1, 2) for i in range(4)]
        trace = make_trace(contacts)
        interests = interests_for(3, {0: {"k"}})
        m_protocol, _ = build(interests, brokers=[1, 2], trace=trace)
        a_protocol, _ = build(
            interests,
            brokers=[1, 2],
            trace=trace,
            broker_broker_additive_merge=True,
        )
        m_counter = m_protocol.states[1].relay.min_counter("k")
        a_counter = a_protocol.states[1].relay.min_counter("k")
        assert a_counter > m_counter  # bogus counters accumulate

    def test_interest_decays_out_of_relay(self):
        """DF removes interests that are not reinforced (Sec. V-D)."""
        trace = make_trace(
            [
                (100.0, 10.0, 0, 1),  # consumer 0 seeds broker 1 with C=50
                (100.0 + 60 * 60.0, 10.0, 1, 2),  # an hour later
            ]
        )
        interests = interests_for(3, {0: {"k"}})
        # DF = 1/min: the counter (50) is gone within 50 minutes.
        protocol, _ = build(interests, brokers=[1, 2], trace=trace, df_per_min=1.0)
        assert "k" not in protocol.states[1].relay
        assert "k" not in protocol.states[2].relay


class TestDirectDelivery:
    def test_producer_delivers_to_interested_consumer(self):
        trace = make_trace([(100.0, 10.0, 0, 1)])
        interests = interests_for(2, {1: {"k"}})
        _, metrics = build(
            interests, brokers=[], trace=trace, messages=[(0.0, 0, "k", 10_000.0)]
        )
        summary = metrics.summary()
        assert summary.num_intended_deliveries == 1
        assert summary.mean_delay_s == 100.0

    def test_no_delivery_to_uninterested_consumer(self):
        trace = make_trace([(100.0, 10.0, 0, 1)])
        interests = interests_for(2, {1: {"other-key-entirely"}})
        _, metrics = build(
            interests, brokers=[], trace=trace, messages=[(0.0, 0, "k", 10_000.0)]
        )
        # (modulo Bloom false positives, excluded here by construction:
        # check the summary classifies any delivery correctly)
        assert metrics.summary().num_intended_deliveries == 0

    def test_expired_message_not_delivered(self):
        trace = make_trace([(100.0, 10.0, 0, 1)])
        interests = interests_for(2, {1: {"k"}})
        _, metrics = build(
            interests, brokers=[], trace=trace, messages=[(0.0, 0, "k", 50.0)]
        )
        assert metrics.summary().num_deliveries == 0

    def test_duplicate_contact_no_duplicate_delivery(self):
        trace = make_trace([(100.0, 10.0, 0, 1), (200.0, 10.0, 0, 1)])
        interests = interests_for(2, {1: {"k"}})
        _, metrics = build(
            interests, brokers=[], trace=trace, messages=[(0.0, 0, "k", 10_000.0)]
        )
        assert metrics.summary().num_deliveries == 1


class TestRelayPath:
    def chain(self):
        """0 (producer) -> 1 (broker) -> 2 (consumer); 2 seeds 1 first."""
        return make_trace(
            [
                (50.0, 10.0, 1, 2),   # consumer 2 announces interests to broker 1
                (100.0, 10.0, 0, 1),  # producer 0 replicates to broker 1
                (200.0, 10.0, 1, 2),  # broker 1 delivers to consumer 2
            ]
        )

    def test_three_hop_relay_delivery(self):
        interests = interests_for(3, {2: {"k"}})
        protocol, metrics = build(
            interests, brokers=[1], trace=self.chain(),
            messages=[(0.0, 0, "k", 10_000.0)],
        )
        summary = metrics.summary()
        assert summary.num_intended_deliveries == 1
        assert summary.mean_delay_s == 200.0  # created at 0, delivered at t=200

    def test_producer_does_not_replicate_unwanted_keys(self):
        interests = interests_for(3, {2: {"wanted"}})
        protocol, _ = build(
            interests, brokers=[1], trace=self.chain(),
            messages=[(0.0, 0, "unwanted-key-x", 10_000.0)],
        )
        assert len(protocol.states[1].carried) == 0

    def test_copy_limit_respected(self):
        """A producer hands out at most ℂ copies, then drops the message."""
        contacts = [(50.0, 10.0, 0, broker) for broker in (1, 2, 3, 4)]
        # stagger the contacts
        contacts = [
            (50.0 + 10 * i, 5.0, 0, broker)
            for i, broker in enumerate((1, 2, 3, 4))
        ]
        # every broker already knows a consumer wants "k"
        contacts = [(10.0 + i, 1.0, 5, broker) for i, broker in enumerate((1, 2, 3, 4))] + contacts
        trace = make_trace(contacts, nodes=range(6))
        interests = interests_for(6, {5: {"k"}})
        protocol, metrics = build(
            interests, brokers=[1, 2, 3, 4], trace=trace,
            messages=[(0.0, 0, "k", 10_000.0)], copy_limit=2,
        )
        carried_total = sum(
            len(protocol.states[b].carried) for b in (1, 2, 3, 4)
        )
        assert carried_total == 2  # ℂ = 2 replicas, then removed from producer
        assert len(protocol.states[0].own) == 0

    def test_broker_delivers_from_carried_buffer(self):
        interests = interests_for(3, {2: {"k"}})
        _, metrics = build(
            interests, brokers=[1], trace=self.chain(),
            messages=[(0.0, 0, "k", 10_000.0)],
        )
        assert metrics.summary().delivery_ratio == 1.0

    def test_broker_who_is_consumer_gets_self_delivery(self):
        """A broker interested in a key it relays counts as a delivery."""
        trace = make_trace([(50.0, 10.0, 1, 2), (100.0, 10.0, 0, 1)])
        interests = interests_for(3, {1: {"k"}, 2: {"k"}})
        _, metrics = build(
            interests, brokers=[1], trace=trace,
            messages=[(0.0, 0, "k", 10_000.0)],
        )
        delivered_to = {r.node for r in metrics.deliveries}
        assert 1 in delivered_to


class TestBrokerToBrokerForwarding:
    def two_broker_chain(self):
        """producer 0 -> broker 1 -> broker 2 -> consumer 3.

        Consumer 3 announces twice, so broker 2's counters (100 after
        reinforcement) exceed broker 1's merged copy (50) and the
        preferential query P_{2,1}(k) = 50 > 0 triggers forwarding —
        exactly the decaying-and-reinforcement mechanism that
        "identif[ies] closely related broker-consumer pairs" (Sec. V-C).
        """
        return make_trace(
            [
                (10.0, 5.0, 2, 3),    # consumer 3 announces to broker 2 (50)
                (20.0, 5.0, 1, 2),    # brokers meet: both relays at 50
                (25.0, 5.0, 2, 3),    # reinforcement: broker 2 at 100
                (30.0, 5.0, 0, 1),    # producer replicates to broker 1
                (40.0, 5.0, 1, 2),    # P_{2,1}(k) = 100 - 50 > 0 -> forward
                (50.0, 5.0, 2, 3),    # broker 2 delivers to consumer 3
            ]
        )

    def test_preferential_forwarding_moves_message(self):
        interests = interests_for(4, {3: {"k"}})
        protocol, metrics = build(
            interests, brokers=[1, 2], trace=self.two_broker_chain(),
            messages=[(0.0, 0, "k", 10_000.0)],
        )
        assert metrics.summary().num_intended_deliveries == 1

    def test_forwarded_message_leaves_sender(self):
        interests = interests_for(4, {3: {"k"}})
        protocol, _ = build(
            interests, brokers=[1, 2], trace=self.two_broker_chain(),
            messages=[(0.0, 0, "k", 10_000.0)],
        )
        # after forwarding 1 -> 2 and delivery at 3, broker 1 no longer
        # carries the message ("removed from brokers' memory after
        # being forwarded")
        assert len(protocol.states[1].carried) == 0

    def test_no_forwarding_without_positive_preference(self):
        """If the receiving broker knows nothing about the key, the
        sender's own knowledge makes its preference non-positive."""
        trace = make_trace(
            [
                (10.0, 5.0, 0, 1),   # producer seeds broker 1? no interest known
                (20.0, 5.0, 1, 2),   # brokers meet; 2 knows nothing
            ]
        )
        interests = interests_for(3, {0: {"k"}})
        # broker 1 has interest "k" registered (consumer 0 announced) but
        # broker 2 never met an interested consumer -> P_{2,1}(k) < 0.
        protocol, _ = build(
            interests, brokers=[1, 2], trace=trace,
            messages=[(5.0, 0, "k", 10_000.0)],
        )
        assert len(protocol.states[2].carried) == 0


class TestFalsePositives:
    def test_false_positive_delivery_recorded(self):
        """With a tiny filter, an uninterested consumer's bloom filter
        matches foreign keys, causing false deliveries (Fig. 9(d))."""
        trace = make_trace([(100.0, 10.0, 0, 1)])
        interests = interests_for(2, {1: {"a", "b", "c", "d", "e", "f"}})
        # 16-bit filter with 6 interests -> near-certain false positives
        _, metrics = build(
            interests, brokers=[], trace=trace,
            messages=[(0.0, 0, "zzz-not-wanted", 10_000.0)],
            num_bits=16, num_hashes=2,
        )
        summary = metrics.summary()
        assert summary.num_false_deliveries >= 1
        assert summary.false_positive_ratio > 0.0


class TestBandwidthAccounting:
    def test_filters_charged_to_channel(self):
        trace = make_trace([(100.0, 10.0, 0, 1)])
        interests = interests_for(2, {0: {"k"}, 1: {"j"}})
        config = BsubConfig(static_brokers=(1,))
        metrics = MetricsCollector(interests, "B-SUB")
        protocol = BsubProtocol(interests, metrics, config)
        simulation = Simulation(trace, protocol, [], rate_bps=250_000)
        report = simulation.run()
        assert report.bytes_transferred > 0  # filters moved even with no messages

    def test_tight_channel_blocks_messages_not_state(self):
        """A channel too small for the message still lets B-SUB run."""
        trace = make_trace([(100.0, 2.0, 0, 1)])
        interests = interests_for(2, {1: {"k"}})
        metrics = MetricsCollector(interests, "B-SUB")
        protocol = BsubProtocol(interests, metrics, BsubConfig(static_brokers=()))
        m = Message.create("k", 0, 0.0, 10_000.0, size_bytes=140)
        # 2 s * 80 bps = 20 bytes: genuine BFs (~9-13 B) fit, message doesn't
        Simulation(trace, protocol, [MessageEvent(0.0, 0, m)], rate_bps=80).run()
        assert metrics.summary().num_deliveries == 0


class TestElectionIntegration:
    def test_dynamic_election_produces_brokers(self, line_trace):
        interests = interests_for(4, {3: {"k"}})
        metrics = MetricsCollector(interests, "B-SUB")
        protocol = BsubProtocol(interests, metrics, BsubConfig())
        Simulation(line_trace, protocol, [], rate_bps=None).run()
        assert protocol.broker_fraction() > 0.0

    def test_buffered_message_count(self):
        trace = make_trace([(100.0, 10.0, 0, 1)])
        interests = interests_for(2)
        protocol, _ = build(
            interests, brokers=[], trace=trace,
            messages=[(0.0, 0, "k", 10_000.0)],
        )
        assert protocol.buffered_message_count() == 1
