"""Tests for the Spray-and-Wait extension baseline."""

import pytest

from repro.dtn.events import MessageEvent
from repro.dtn.simulator import Simulation
from repro.experiments import ExperimentConfig, run_experiment
from repro.pubsub.extra_baselines import SprayAndWaitProtocol
from repro.pubsub.messages import Message
from repro.pubsub.metrics import MetricsCollector
from repro.traces.synthetic import haggle_like

from ..conftest import make_trace


def run(trace, interests, messages, copies=8):
    metrics = MetricsCollector(interests, "SPRAY")
    protocol = SprayAndWaitProtocol(interests, metrics, initial_copies=copies)
    events = [
        MessageEvent(t, node, Message.create(key, node, t, ttl))
        for (t, node, key, ttl) in messages
    ]
    Simulation(trace, protocol, events, rate_bps=None).run()
    return protocol, metrics.summary()


def empty_interests(n, overrides=None):
    interests = {node: frozenset() for node in range(n)}
    for node, keys in (overrides or {}).items():
        interests[node] = frozenset(keys)
    return interests


class TestSprayMechanics:
    def test_direct_delivery_to_interested(self):
        trace = make_trace([(100.0, 10.0, 0, 1)])
        interests = empty_interests(2, {1: {"k"}})
        _, summary = run(trace, interests, [(0.0, 0, "k", 1e5)])
        assert summary.num_intended_deliveries == 1

    def test_binary_spray_halves_quota(self):
        trace = make_trace([(100.0, 10.0, 0, 1)])
        interests = empty_interests(2)
        protocol, _ = run(trace, interests, [(0.0, 0, "k", 1e5)], copies=8)
        message_id = next(iter(protocol.carried[0]))
        assert protocol.carried[0][message_id][1] == 4
        assert protocol.carried[1][message_id][1] == 4

    def test_wait_phase_stops_spraying(self):
        """A single-copy carrier must not infect uninterested nodes."""
        trace = make_trace([(100.0, 10.0, 0, 1)])
        interests = empty_interests(2)
        protocol, _ = run(trace, interests, [(0.0, 0, "k", 1e5)], copies=1)
        assert len(protocol.carried[1]) == 0

    def test_wait_phase_still_delivers(self):
        trace = make_trace([(100.0, 10.0, 0, 1)])
        interests = empty_interests(2, {1: {"k"}})
        _, summary = run(trace, interests, [(0.0, 0, "k", 1e5)], copies=1)
        assert summary.num_intended_deliveries == 1

    def test_copy_budget_conserved(self):
        """The total quota never exceeds L per message (binary split)."""
        trace = make_trace(
            [(100.0 + i * 50, 10.0, i % 3, (i + 1) % 3) for i in range(6)]
        )
        interests = empty_interests(3)
        protocol, _ = run(trace, interests, [(0.0, 0, "k", 1e5)], copies=8)
        assert protocol.total_copies_in_flight() == 8

    def test_multi_hop_via_spray(self):
        """0 sprays to 1; 1 delivers to consumer 2 whom 0 never meets."""
        trace = make_trace([(100.0, 10.0, 0, 1), (200.0, 10.0, 1, 2)])
        interests = empty_interests(3, {2: {"k"}})
        _, summary = run(trace, interests, [(0.0, 0, "k", 1e5)], copies=4)
        assert summary.num_intended_deliveries == 1

    def test_ttl_respected(self):
        trace = make_trace([(100.0, 10.0, 0, 1)])
        interests = empty_interests(2, {1: {"k"}})
        _, summary = run(trace, interests, [(0.0, 0, "k", 50.0)])
        assert summary.num_deliveries == 0

    def test_never_false_delivery(self):
        trace = make_trace([(100.0, 10.0, 0, 1)])
        interests = empty_interests(2, {1: {"zzz"}})
        _, summary = run(trace, interests, [(0.0, 0, "k", 1e5)])
        assert summary.num_false_deliveries == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="initial_copies"):
            SprayAndWaitProtocol({}, MetricsCollector({}, "SPRAY"),
                                 initial_copies=0)


class TestComparative:
    @pytest.fixture(scope="class")
    def results(self):
        trace = haggle_like(scale=0.03, seed=46)
        config = ExperimentConfig(ttl_min=600.0, min_rate_per_s=1 / 3600.0)
        return {
            name: run_experiment(trace, name, config)
            for name in ("PUSH", "B-SUB", "SPRAY", "PULL")
        }

    def test_spray_sits_between_push_and_pull(self, results):
        push = results["PUSH"].summary.delivery_ratio
        spray = results["SPRAY"].summary.delivery_ratio
        pull = results["PULL"].summary.delivery_ratio
        assert pull < spray < push

    def test_spray_overhead_bounded_by_quota(self, results):
        """≤ L sprays + deliveries per message."""
        summary = results["SPRAY"].summary
        assert summary.num_forwardings <= summary.num_messages * (
            8 + results["SPRAY"].summary.num_intended_pairs
        )
        assert (
            summary.forwardings_per_delivered
            < results["PUSH"].summary.forwardings_per_delivered
        )

    def test_spray_copies_config(self):
        trace = haggle_like(scale=0.02, seed=47)
        few = run_experiment(
            trace, "SPRAY",
            ExperimentConfig(ttl_min=600.0, min_rate_per_s=1 / 7200.0,
                             spray_copies=2),
        )
        many = run_experiment(
            trace, "SPRAY",
            ExperimentConfig(ttl_min=600.0, min_rate_per_s=1 / 7200.0,
                             spray_copies=16),
        )
        assert many.summary.delivery_ratio >= few.summary.delivery_ratio
