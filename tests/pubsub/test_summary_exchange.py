"""Tests for PUSH's summary-vector exchange modes."""

import pytest

from repro.dtn.events import MessageEvent
from repro.dtn.simulator import Simulation
from repro.experiments import ExperimentConfig, run_experiment
from repro.pubsub.baselines import PushProtocol
from repro.pubsub.messages import Message
from repro.pubsub.metrics import MetricsCollector
from repro.traces.synthetic import haggle_like

from ..conftest import make_trace


def run_push(trace, interests, messages, mode, rate_bps=None):
    metrics = MetricsCollector(interests, "PUSH")
    protocol = PushProtocol(interests, metrics, summary_exchange=mode)
    events = [
        MessageEvent(t, node, Message.create(key, node, t, ttl))
        for (t, node, key, ttl) in messages
    ]
    report = Simulation(trace, protocol, events, rate_bps=rate_bps).run()
    return metrics.summary(), report


class TestModes:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="summary_exchange"):
            PushProtocol({}, MetricsCollector({}, "PUSH"), summary_exchange="smoke")

    def test_free_mode_moves_no_control_bytes(self):
        trace = make_trace([(100.0, 10.0, 0, 1)])
        interests = {0: frozenset(), 1: frozenset({"k"})}
        summary, report = run_push(
            trace, interests, [(0.0, 0, "k", 1e5)], "free"
        )
        # only the 140-byte message crossed
        assert report.bytes_transferred == 140.0
        assert summary.num_intended_deliveries == 1

    @pytest.mark.parametrize("mode", ["ids", "bloom"])
    def test_summaries_charged(self, mode):
        trace = make_trace([(100.0, 10.0, 0, 1)])
        interests = {0: frozenset(), 1: frozenset({"k"})}
        summary, report = run_push(
            trace, interests, [(0.0, 0, "k", 1e5)], mode
        )
        assert report.bytes_transferred > 140.0  # message + 2 summaries
        assert summary.num_intended_deliveries == 1

    def test_bloom_summary_cheaper_than_ids(self):
        protocol_ids = PushProtocol({}, MetricsCollector({}, "PUSH"),
                                    summary_exchange="ids")
        protocol_bloom = PushProtocol({}, MetricsCollector({}, "PUSH"),
                                      summary_exchange="bloom")
        trace = make_trace([(0.0, 1.0, 0, 1)])
        for protocol in (protocol_ids, protocol_bloom):
            protocol.setup(trace)
            for i in range(100):
                m = Message.create("k", 0, 0.0, 1e5)
                protocol.on_message_created(0, m, 0.0)
        assert protocol_bloom._summary_bytes(0) < protocol_ids._summary_bytes(0)

    def test_tight_channel_blocks_replication_entirely(self):
        """If the summaries don't fit, nothing replicates — the
        anti-entropy handshake is a prerequisite."""
        trace = make_trace([(100.0, 2.0, 0, 1)])
        interests = {0: frozenset(), 1: frozenset({"k"})}
        # 2 s * 40 bps = 10 B: the 13 B id-summary doesn't fit
        summary, report = run_push(
            trace, interests, [(0.0, 0, "k", 1e5)], "ids", rate_bps=40
        )
        assert summary.num_deliveries == 0


class TestEndToEnd:
    def test_delivery_identical_across_modes_without_bandwidth_limit(self):
        trace = haggle_like(scale=0.015, seed=44)
        config = dict(ttl_min=300.0, min_rate_per_s=1 / 7200.0)
        results = {
            mode: run_experiment(
                trace, "PUSH",
                ExperimentConfig(push_summary_exchange=mode, **config),
            )
            for mode in ("free", "ids", "bloom")
        }
        ratios = {m: r.summary.delivery_ratio for m, r in results.items()}
        assert ratios["free"] == pytest.approx(ratios["ids"], abs=0.02)
        assert ratios["free"] == pytest.approx(ratios["bloom"], abs=0.02)

    def test_realistic_push_pays_for_its_knowledge(self):
        trace = haggle_like(scale=0.015, seed=44)
        config = dict(ttl_min=300.0, min_rate_per_s=1 / 7200.0)
        free = run_experiment(
            trace, "PUSH", ExperimentConfig(push_summary_exchange="free", **config)
        )
        ids = run_experiment(
            trace, "PUSH", ExperimentConfig(push_summary_exchange="ids", **config)
        )
        bloom = run_experiment(
            trace, "PUSH", ExperimentConfig(push_summary_exchange="bloom", **config)
        )
        assert ids.engine.bytes_transferred > bloom.engine.bytes_transferred
        assert bloom.engine.bytes_transferred > free.engine.bytes_transferred
