"""Integration tests: the filter zoo behind the protocol's relay seam.

Covers the ``filter_spec`` plumbing (config validation, node relay
construction, interest absorption, wire-size accounting) and the
attribution-mode adaptive controller wired into the replication path.
"""

import pytest

from repro.core.allocation import TCBFCollection
from repro.core.countbf import CountBF2D
from repro.core.retouched import RetouchedTCBF
from repro.dtn.events import MessageEvent
from repro.dtn.simulator import Simulation
from repro.pubsub.adaptive import AdaptiveDecayConfig, AdaptiveDecayController
from repro.pubsub.messages import Message
from repro.pubsub.metrics import MetricsCollector
from repro.pubsub.node import BsubNodeState
from repro.pubsub.protocol import BsubConfig, BsubProtocol

from ..conftest import make_trace


def build(interests, brokers, trace, messages=(), **config_overrides):
    config = BsubConfig(static_brokers=tuple(brokers), **config_overrides)
    metrics = MetricsCollector(interests, "B-SUB")
    protocol = BsubProtocol(interests, metrics, config)
    events = [
        MessageEvent(t, node, Message.create(key, node, t, ttl))
        for (t, node, key, ttl) in messages
    ]
    report = Simulation(trace, protocol, events, rate_bps=None).run()
    return protocol, metrics, report


def interests_for(num_nodes, overrides=None):
    interests = {n: frozenset() for n in range(num_nodes)}
    for node, keys in (overrides or {}).items():
        interests[node] = frozenset(keys)
    return interests


class TestConfigValidation:
    def test_bad_spec_fails_fast(self):
        with pytest.raises(ValueError, match="unknown filter backend"):
            BsubConfig(filter_spec="cuckoo")

    def test_raw_encoding_conflicts(self):
        with pytest.raises(ValueError, match="TCBF"):
            BsubConfig(interest_encoding="raw", filter_spec="array")

    def test_relay_fill_threshold_conflicts(self):
        with pytest.raises(ValueError, match="multi:threshold"):
            BsubConfig(relay_fill_threshold=0.3, filter_spec="multi")

    def test_node_state_rejects_both_selectors(self):
        from repro.core import HashFamily

        with pytest.raises(ValueError, match="mutually exclusive"):
            BsubNodeState(
                node_id=0,
                interests=frozenset(),
                family=HashFamily(4, 256),
                initial_value=50.0,
                decay_factor=0.0,
                copy_limit=4,
                relay_fill_threshold=0.3,
                filter_spec="multi",
            )


class TestRelayConstruction:
    @pytest.mark.parametrize(
        "spec, relay_type",
        [
            ("array", "TemporalCountingBloomFilter"),
            ("dict", "TemporalCountingBloomFilter"),
            ("multi:keys=16,mem=512", "TCBFCollection"),
            ("retouched:clear=3+17", "RetouchedTCBF"),
            ("countbf", "CountBF2D"),
        ],
    )
    def test_states_use_selected_backend(self, spec, relay_type):
        trace = make_trace([(100.0, 10.0, 0, 1)])
        interests = interests_for(2, {0: {"NewMoon"}})
        protocol, _, _ = build(interests, brokers=[1], trace=trace, filter_spec=spec)
        for state in protocol.states.values():
            assert type(state.relay).__name__ == relay_type

    def test_interest_absorbed_into_each_backend(self):
        for spec in ("array", "multi:keys=8,mem=512", "retouched:clear=3", "countbf"):
            trace = make_trace([(100.0, 10.0, 0, 1)])
            interests = interests_for(2, {0: {"NewMoon"}})
            protocol, _, _ = build(
                interests, brokers=[1], trace=trace, filter_spec=spec
            )
            assert protocol.states[1].relay.query("NewMoon"), spec

    def test_retouched_relay_ignores_cleared_interest(self):
        """An interest whose bits are all cleared cannot enter the relay."""
        from repro.core import HashFamily

        family = HashFamily(4, 256)
        bits = sorted(set(int(p) for p in family.positions("NewMoon")))
        spec = "retouched:clear=" + "+".join(str(b) for b in bits)
        trace = make_trace([(100.0, 10.0, 0, 1)])
        interests = interests_for(2, {0: {"NewMoon"}})
        protocol, _, _ = build(interests, brokers=[1], trace=trace, filter_spec=spec)
        relay = protocol.states[1].relay
        assert isinstance(relay, RetouchedTCBF)
        assert not relay.query("NewMoon")

    def test_three_hop_delivery_per_backend(self):
        """End-to-end delivery works across the whole zoo."""
        contacts = [
            (50.0, 10.0, 0, 1),  # consumer 0 announces to broker 1
            (100.0, 10.0, 2, 1),  # producer 2 injects to broker 1
            (150.0, 10.0, 1, 0),  # broker 1 delivers to consumer 0
        ]
        for spec in (
            None,
            "array",
            "multi:keys=8,mem=512",
            "retouched:clear=3",
            "countbf",
        ):
            trace = make_trace(contacts)
            interests = interests_for(3, {0: {"NewMoon"}})
            protocol, metrics, report = build(
                interests,
                brokers=[1],
                trace=trace,
                messages=[(90.0, 2, "NewMoon", 600.0)],
                filter_spec=spec,
            )
            summary = metrics.summary()
            assert summary.num_intended_deliveries == 1, spec


class TestWireSizeAccounting:
    def _relay_bytes(self, spec):
        # Two consumers announce in turn so a threshold-limited
        # collection splits into multiple constituent filters.
        contacts = [
            (50.0, 10.0, 0, 1),
            (60.0, 10.0, 3, 1),
            (100.0, 10.0, 1, 2),
        ]
        trace = make_trace(contacts)
        interests = interests_for(
            4,
            {
                0: {f"key-a{i}" for i in range(15)},
                3: {f"key-b{i}" for i in range(15)},
            },
        )
        protocol, metrics, report = build(
            interests, brokers=[1, 2], trace=trace, filter_spec=spec
        )
        return report.bytes_transferred

    def test_backend_choice_changes_accounted_bytes(self):
        sizes = {
            spec: self._relay_bytes(spec)
            for spec in ("array", "multi:threshold=0.1", "countbf")
        }
        assert all(size > 0 for size in sizes.values())
        # A split collection pays per-constituent headers/sparser
        # encodings, so its accounted bytes must differ from the single
        # filter's.
        assert sizes["multi:threshold=0.1"] != sizes["array"]
        # A 256-cell grid and a 256-bit TCBF cost the same under the
        # Sec. VI-C compact model (1-byte locations either way) but
        # carry different occupancy for the same keys.
        assert sizes["countbf"] != sizes["array"]

    def test_array_spec_matches_default_accounting(self):
        assert self._relay_bytes("array") == self._relay_bytes(None)


class TestAttributionController:
    def test_observe_inert_in_attribution_mode(self):
        config = AdaptiveDecayConfig(mode="attribution")
        controller = AdaptiveDecayController(config, initial_df_per_s=0.1)
        from repro.core.tcbf import TemporalCountingBloomFilter

        relay = TemporalCountingBloomFilter()
        relay.insert("k")
        assert controller.observe(relay, now=1e6) is False
        assert controller.adjustments == 0

    def test_record_injection_raises_df_on_false_floods(self):
        config = AdaptiveDecayConfig(
            mode="attribution",
            target_false_ratio=0.2,
            min_injections=10,
            interval_s=100.0,
        )
        controller = AdaptiveDecayController(config, initial_df_per_s=0.1)
        from repro.core.tcbf import TemporalCountingBloomFilter

        relay = TemporalCountingBloomFilter()
        adjusted = False
        for i in range(10):
            adjusted |= controller.record_injection(True, 200.0 + i, relay)
        assert adjusted
        assert controller.df_per_s > 0.1
        assert relay.decay_factor == controller.df_per_s

    def test_record_injection_lowers_df_when_clean(self):
        config = AdaptiveDecayConfig(
            mode="attribution",
            target_false_ratio=0.2,
            min_injections=10,
            interval_s=100.0,
        )
        controller = AdaptiveDecayController(config, initial_df_per_s=0.1)
        from repro.core.tcbf import TemporalCountingBloomFilter

        relay = TemporalCountingBloomFilter()
        for i in range(10):
            controller.record_injection(False, 200.0 + i, relay)
        assert controller.df_per_s < 0.1

    def test_fill_ratio_mode_ignores_injections(self):
        config = AdaptiveDecayConfig(mode="fill_ratio")
        controller = AdaptiveDecayController(config, initial_df_per_s=0.1)
        from repro.core.tcbf import TemporalCountingBloomFilter

        relay = TemporalCountingBloomFilter()
        for i in range(100):
            assert controller.record_injection(True, 200.0 + i, relay) is False
        assert controller.df_per_s == 0.1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdaptiveDecayConfig(mode="nonsense")
        with pytest.raises(ValueError):
            AdaptiveDecayConfig(mode="attribution", target_false_ratio=0.0)
        with pytest.raises(ValueError):
            AdaptiveDecayConfig(mode="attribution", min_injections=0)

    def test_protocol_feeds_controller_in_attribution_mode(self):
        """A producer flooding useless traffic drives the broker's DF up.

        The producer is its own only subscriber, so every replicated
        message is a guaranteed *useless* injection (genuinely matched
        by the relay, zero intended recipients) — the deterministic
        stand-in for Sec. VI-B false-positive traffic.
        """
        contacts = [(50.0, 10.0, 0, 1)]
        contacts += [(100.0 + 10 * i, 5.0, 2, 1) for i in range(30)]
        trace = make_trace(contacts)
        interests = interests_for(3, {0: {"wanted"}, 2: {"selfkey"}})
        messages = [
            (60.0 + 10 * i, 2, "selfkey", 2000.0) for i in range(30)
        ]
        adaptive = AdaptiveDecayConfig(
            mode="attribution",
            target_false_ratio=0.2,
            min_injections=5,
            interval_s=50.0,
        )
        protocol, _, _ = build(
            interests,
            brokers=[1],
            trace=trace,
            messages=messages,
            decay_factor_per_min=0.6,
            adaptive_df=adaptive,
        )
        controller = protocol.df_controllers[1]
        assert controller.adjustments >= 1
        assert controller.df_per_s > 0.01  # raised above initial 0.6/min


class TestZooRelayTypes:
    """The zoo types keep their class through the full protocol run."""

    def test_multi_collection_grows_under_load(self):
        trace = make_trace([(50.0 + i, 5.0, 0, 1) for i in range(3)])
        many = {f"key-{i}" for i in range(40)}
        interests = interests_for(2, {0: many})
        protocol, _, _ = build(
            interests, brokers=[1], trace=trace, filter_spec="multi:keys=8,mem=2048"
        )
        relay = protocol.states[1].relay
        assert isinstance(relay, TCBFCollection)
        assert len(relay.filters) >= 2

    def test_countbf_relay_counts_repeat_announcements(self):
        trace = make_trace(
            [(100.0, 10.0, 0, 1), (200.0, 10.0, 0, 1), (300.0, 10.0, 0, 1)]
        )
        interests = interests_for(2, {0: {"k"}})
        protocol, _, _ = build(
            interests, brokers=[1], trace=trace, filter_spec="countbf"
        )
        relay = protocol.states[1].relay
        assert isinstance(relay, CountBF2D)
        assert relay.min_counter("k") == pytest.approx(150.0)
