"""Tests for the wire protocol frames."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bloom import BloomFilter
from repro.core.hashing import HashFamily
from repro.core.tcbf import TemporalCountingBloomFilter
from repro.pubsub.messages import Message
from repro.pubsub.wire import (
    DecodeResult,
    FilterRequest,
    Hello,
    InterestAnnouncement,
    MessageBundle,
    RelayFilter,
    decode_frames,
    decode_message,
    encode_frame,
    encode_message,
)


def roundtrip(frames, family, initial_value=50.0):
    blob = b"".join(encode_frame(f) for f in frames)
    result = decode_frames(blob, family, initial_value)
    assert result.ok and result.consumed == len(blob)
    return result


class TestMessageCodec:
    def test_roundtrip_default_payload(self):
        m = Message.create("NewMoon", source=3, created_at=12.5, ttl_s=600.0,
                           size_bytes=42)
        data = encode_message(m)
        decoded, payload, offset = decode_message(data)
        assert decoded == m
        assert payload == bytes(42)
        assert offset == len(data)

    def test_roundtrip_real_payload(self):
        m = Message.create("k", 0, 0.0, 10.0, size_bytes=5)
        data = encode_message(m, b"hello")
        _, payload, _ = decode_message(data)
        assert payload == b"hello"

    def test_multi_key_roundtrip(self):
        m = Message.create(["alpha", "beta"], 0, 1.0, 10.0, size_bytes=3)
        decoded, _, _ = decode_message(encode_message(m))
        assert decoded.keys == frozenset({"alpha", "beta"})

    def test_payload_size_mismatch_rejected(self):
        m = Message.create("k", 0, 0.0, 10.0, size_bytes=5)
        with pytest.raises(ValueError, match="payload"):
            encode_message(m, b"toolongpayload")

    def test_id_preserved_not_reallocated(self):
        m = Message.create("k", 0, 0.0, 10.0)
        decoded, _, _ = decode_message(encode_message(m))
        assert decoded.id == m.id

    def test_truncated_payload_rejected(self):
        m = Message.create("k", 0, 0.0, 10.0, size_bytes=100)
        data = encode_message(m)[:-10]
        with pytest.raises(ValueError, match="truncated"):
            decode_message(data)

    def test_unicode_keys(self):
        m = Message.create("日本語トレンド", 0, 0.0, 10.0, size_bytes=1)
        decoded, _, _ = decode_message(encode_message(m))
        assert decoded.keys == m.keys


class TestFrames:
    def test_hello_roundtrip(self, family):
        frames = roundtrip([Hello(7, True, 42, 123.5)], family)
        assert isinstance(frames, DecodeResult)
        assert list(frames) == [Hello(7, True, 42, 123.5)]

    def test_interest_announcement_roundtrip(self, family):
        genuine = TemporalCountingBloomFilter.of(
            ["NewMoon", "Phillies"], family=family, initial_value=50
        )
        (frame,) = roundtrip([InterestAnnouncement(genuine)], family)
        assert isinstance(frame, InterestAnnouncement)
        assert "NewMoon" in frame.filter
        assert frame.filter.min_counter("NewMoon") == pytest.approx(50, rel=0.01)

    def test_relay_filter_roundtrip_preserves_counters(self, family):
        relay = TemporalCountingBloomFilter(family=family, initial_value=50)
        relay.a_merge(
            TemporalCountingBloomFilter.of(["a"], family=family, initial_value=50)
        )
        relay.a_merge(
            TemporalCountingBloomFilter.of(["a"], family=family, initial_value=50)
        )
        (frame,) = roundtrip([RelayFilter(relay)], family)
        assert frame.filter.min_counter("a") == pytest.approx(100, rel=0.05)

    def test_filter_request_roundtrip(self, family):
        bf = BloomFilter.of(["x", "y"], family=family)
        (frame,) = roundtrip([FilterRequest(bf)], family)
        assert frame.filter == bf

    def test_message_bundle_roundtrip(self, family):
        messages = tuple(
            Message.create(f"key-{i}", i, float(i), 100.0, size_bytes=10)
            for i in range(3)
        )
        bundle = MessageBundle(messages, tuple(bytes(10) for _ in range(3)))
        (frame,) = roundtrip([bundle], family)
        assert frame == bundle

    def test_bundle_length_mismatch_rejected(self):
        m = Message.create("k", 0, 0.0, 10.0)
        with pytest.raises(ValueError):
            MessageBundle((m,), ())

    def test_full_contact_transcript(self, family):
        """A realistic contact: hello, announcement, request, bundle."""
        genuine = TemporalCountingBloomFilter.of(
            ["NewMoon"], family=family, initial_value=50
        )
        request = FilterRequest(genuine.to_bloom())
        m = Message.create("NewMoon", 1, 5.0, 600.0, size_bytes=140)
        frames = [
            Hello(1, False, 12, 100.0),
            Hello(2, True, 30, 100.0),
            InterestAnnouncement(genuine),
            request,
            MessageBundle((m,), (bytes(140),)),
        ]
        decoded = roundtrip(frames, family)
        assert [type(f) for f in decoded] == [type(f) for f in frames]

    def test_truncated_transcript_drops_partial_frame(self, family):
        frames = [Hello(1, False, 3, 0.0), Hello(2, True, 5, 0.0)]
        blob = b"".join(encode_frame(f) for f in frames)
        decoded = decode_frames(blob[:-4], family, 50.0)  # cut mid-frame
        assert list(decoded) == [Hello(1, False, 3, 0.0)]
        assert not decoded.ok
        assert decoded.error.reason == "truncated_body"
        assert decoded.consumed == len(encode_frame(frames[0]))

    def test_unknown_frame_type_reported(self, family):
        blob = bytes([0xEE]) + (4).to_bytes(4, "little") + b"\x00" * 4
        result = decode_frames(blob, family, 50.0)
        assert list(result) == []
        assert result.error.reason == "unknown_frame_type"
        assert result.error.frame_type == 0xEE
        assert result.consumed == 0

    def test_declared_length_overrun_rejected(self, family):
        # Header declares a huge body; only a few bytes follow.  Must
        # be rejected as truncated_body without reading past the end.
        blob = bytes([0x10]) + (10_000).to_bytes(4, "little") + b"\x00" * 8
        result = decode_frames(blob, family, 50.0)
        assert list(result) == []
        assert result.error.reason == "truncated_body"

    def test_good_frames_before_corrupt_body_survive(self, family):
        good = encode_frame(Hello(1, False, 3, 0.0))
        # A valid header for an interest announcement with garbage body.
        bad = bytes([0x11]) + (3).to_bytes(4, "little") + b"\xff\xff\xff"
        result = decode_frames(good + bad, family, 50.0)
        assert list(result) == [Hello(1, False, 3, 0.0)]
        assert result.error.reason == "bad_body"
        assert result.consumed == len(good)

    def test_not_a_frame_rejected(self):
        with pytest.raises(TypeError, match="not a wire frame"):
            encode_frame("hello")


class TestSizeConsistency:
    """The byte sizes the simulator charges must match real encodings."""

    def test_interest_announcement_size_matches_charge(self, family):
        from repro.core.analysis import filter_memory_bytes
        from repro.pubsub.protocol import _FILTER_HEADER_BYTES

        genuine = TemporalCountingBloomFilter.of(
            [f"key-{i}" for i in range(5)], family=family, initial_value=50
        )
        real = len(encode_frame(InterestAnnouncement(genuine)))
        charged = _FILTER_HEADER_BYTES + filter_memory_bytes(
            len(genuine), 256, counters="identical"
        )
        assert abs(real - charged) <= 6  # frame header vs modelled header

    def test_relay_filter_size_matches_charge(self, family):
        from repro.core.analysis import filter_memory_bytes
        from repro.pubsub.protocol import _FILTER_HEADER_BYTES

        relay = TemporalCountingBloomFilter(family=family, initial_value=50)
        relay.a_merge(
            TemporalCountingBloomFilter.of(
                [f"k{i}" for i in range(12)], family=family, initial_value=50
            )
        )
        real = len(encode_frame(RelayFilter(relay)))
        charged = _FILTER_HEADER_BYTES + filter_memory_bytes(
            len(relay), 256, counters="full"
        )
        assert abs(real - charged) <= 6

    def test_message_size_dominated_by_payload(self):
        m = Message.create("NewMoon", 0, 0.0, 600.0, size_bytes=140)
        overhead = len(encode_message(m)) - 140
        assert overhead < 50  # header + key string


@given(
    node=st.integers(0, 2**31 - 1),
    broker=st.booleans(),
    degree=st.integers(0, 2**31 - 1),
    time=st.floats(0, 1e9),
)
@settings(max_examples=50)
def test_property_hello_roundtrip(node, broker, degree, time):
    fam = HashFamily(4, 256, seed=1)
    blob = encode_frame(Hello(node, broker, degree, time))
    (decoded,) = decode_frames(blob, fam, 50.0)
    assert decoded == Hello(node, broker, degree, time)


@given(
    keys=st.sets(
        st.text(
            alphabet=st.characters(blacklist_categories=("Cs",)),
            min_size=1,
            max_size=20,
        ),
        min_size=1,
        max_size=5,
    ),
    size=st.integers(1, 140),
)
@settings(max_examples=50)
def test_property_message_roundtrip(keys, size):
    m = Message.create(keys, source=1, created_at=2.0, ttl_s=60.0, size_bytes=size)
    decoded, payload, _ = decode_message(encode_message(m))
    assert decoded == m
    assert len(payload) == size
