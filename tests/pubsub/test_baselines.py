"""Tests for the PUSH and PULL baselines on hand-crafted scenarios."""

import pytest

from repro.dtn.events import MessageEvent
from repro.dtn.simulator import Simulation
from repro.pubsub.baselines import PullProtocol, PushProtocol
from repro.pubsub.messages import Message
from repro.pubsub.metrics import MetricsCollector

from ..conftest import make_trace


def run(protocol_cls, trace, interests, message_specs, rate_bps=None):
    """Drive one baseline over a trace; message_specs = (t, node, key, ttl)."""
    metrics = MetricsCollector(interests, protocol_cls.name)
    protocol = protocol_cls(interests, metrics)
    events = [
        MessageEvent(t, node, Message.create(key, node, t, ttl))
        for (t, node, key, ttl) in message_specs
    ]
    Simulation(trace, protocol, events, rate_bps=rate_bps).run()
    return metrics.summary()


class TestPush:
    def test_direct_delivery(self, line_trace):
        interests = {0: frozenset(), 1: frozenset({"k"}), 2: frozenset(), 3: frozenset()}
        summary = run(PushProtocol, line_trace, interests, [(0.0, 0, "k", 10_000.0)])
        assert summary.delivery_ratio == 1.0
        assert summary.mean_delay_s == 100.0  # created 0, contact at 100

    def test_multi_hop_relay(self, line_trace):
        """PUSH floods along the 0-1-2-3 chain regardless of interests."""
        interests = {0: frozenset(), 1: frozenset(), 2: frozenset(), 3: frozenset({"k"})}
        summary = run(PushProtocol, line_trace, interests, [(0.0, 0, "k", 10_000.0)])
        assert summary.delivery_ratio == 1.0
        assert summary.num_forwardings == 3  # replicated at every hop

    def test_ttl_stops_flooding(self, line_trace):
        interests = {3: frozenset({"k"}), 0: frozenset(), 1: frozenset(), 2: frozenset()}
        # TTL 250 s: the message dies after the first hop (contact at 300)
        summary = run(PushProtocol, line_trace, interests, [(0.0, 0, "k", 250.0)])
        assert summary.num_intended_deliveries == 0
        assert summary.num_forwardings == 1  # only 0 -> 1 at t=100

    def test_no_duplicate_replication(self):
        trace = make_trace([(100.0, 10.0, 0, 1), (200.0, 10.0, 0, 1)])
        interests = {0: frozenset(), 1: frozenset()}
        summary = run(PushProtocol, trace, interests, [(0.0, 0, "k", 10_000.0)])
        assert summary.num_forwardings == 1

    def test_replication_is_bidirectional(self):
        trace = make_trace([(100.0, 10.0, 0, 1)])
        interests = {0: frozenset({"b"}), 1: frozenset({"a"})}
        summary = run(
            PushProtocol,
            trace,
            interests,
            [(0.0, 0, "a", 10_000.0), (0.0, 1, "b", 10_000.0)],
        )
        assert summary.delivery_ratio == 1.0
        assert summary.num_forwardings == 2

    def test_never_false_delivery(self, line_trace):
        """PUSH uses exact matching, so FPR is structurally 0."""
        interests = {n: frozenset({"other"}) for n in range(4)}
        summary = run(PushProtocol, line_trace, interests, [(0.0, 0, "k", 10_000.0)])
        assert summary.num_false_deliveries == 0

    def test_bandwidth_truncates_flood(self):
        # 1-second contact at 800 bps carries only 100 bytes: one
        # message of default size 140 does NOT fit.
        trace = make_trace([(100.0, 1.0, 0, 1)])
        interests = {0: frozenset(), 1: frozenset({"k"})}
        summary = run(
            PushProtocol, trace, interests, [(0.0, 0, "k", 10_000.0)], rate_bps=800
        )
        assert summary.num_intended_deliveries == 0


class TestPull:
    def test_one_hop_delivery(self):
        trace = make_trace([(100.0, 10.0, 0, 1)])
        interests = {0: frozenset(), 1: frozenset({"k"})}
        summary = run(PullProtocol, trace, interests, [(0.0, 0, "k", 10_000.0)])
        assert summary.delivery_ratio == 1.0
        assert summary.forwardings_per_delivered == 1.0

    def test_never_multi_hop(self, line_trace):
        """Node 3 wants node 0's message but never meets node 0."""
        interests = {0: frozenset(), 1: frozenset(), 2: frozenset(), 3: frozenset({"k"})}
        summary = run(PullProtocol, line_trace, interests, [(0.0, 0, "k", 10_000.0)])
        assert summary.num_intended_deliveries == 0
        assert summary.num_forwardings == 0

    def test_uninterested_neighbour_collects_nothing(self):
        trace = make_trace([(100.0, 10.0, 0, 1)])
        interests = {0: frozenset(), 1: frozenset({"other"})}
        summary = run(PullProtocol, trace, interests, [(0.0, 0, "k", 10_000.0)])
        assert summary.num_deliveries == 0

    def test_expired_messages_not_collected(self):
        trace = make_trace([(100.0, 10.0, 0, 1)])
        interests = {0: frozenset(), 1: frozenset({"k"})}
        summary = run(PullProtocol, trace, interests, [(0.0, 0, "k", 50.0)])
        assert summary.num_deliveries == 0

    def test_no_duplicate_collection(self):
        trace = make_trace([(100.0, 10.0, 0, 1), (200.0, 10.0, 0, 1)])
        interests = {0: frozenset(), 1: frozenset({"k"})}
        summary = run(PullProtocol, trace, interests, [(0.0, 0, "k", 10_000.0)])
        assert summary.num_deliveries == 1
        assert summary.num_forwardings == 1

    def test_collects_from_both_sides(self):
        trace = make_trace([(100.0, 10.0, 0, 1)])
        interests = {0: frozenset({"b"}), 1: frozenset({"a"})}
        summary = run(
            PullProtocol,
            trace,
            interests,
            [(0.0, 0, "a", 10_000.0), (0.0, 1, "b", 10_000.0)],
        )
        assert summary.delivery_ratio == 1.0

    def test_multi_key_message_collected_once(self):
        trace = make_trace([(100.0, 10.0, 0, 1)])
        interests = {0: frozenset(), 1: frozenset({"a", "b"})}
        metrics = MetricsCollector(interests, "PULL")
        protocol = PullProtocol(interests, metrics)
        m = Message.create(["a", "b"], 0, 0.0, 10_000.0)
        Simulation(
            trace, protocol, [MessageEvent(0.0, 0, m)], rate_bps=None
        ).run()
        assert metrics.summary().num_deliveries == 1


class TestComparative:
    def test_push_dominates_pull_on_chain(self, line_trace):
        interests = {0: frozenset(), 1: frozenset(), 2: frozenset(), 3: frozenset({"k"})}
        specs = [(0.0, 0, "k", 10_000.0)]
        push = run(PushProtocol, line_trace, interests, specs)
        pull = run(PullProtocol, line_trace, interests, specs)
        assert push.num_intended_deliveries > pull.num_intended_deliveries
        assert push.num_forwardings > pull.num_forwardings
