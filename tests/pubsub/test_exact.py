"""Tests for the exact (raw-string) interest relay and encoding mode."""

import pytest

from repro.pubsub.exact import (
    ExactInterestRelay,
    raw_interest_wire_bytes,
)


def relay(**kwargs):
    defaults = dict(initial_value=50.0, decay_factor=0.0, time=0.0)
    defaults.update(kwargs)
    return ExactInterestRelay(**defaults)


class TestWireBytes:
    def test_raw_size_formula(self):
        # 2 keys of 7 and 3 bytes, 2 B overhead each
        assert raw_interest_wire_bytes(["NewMoon", "abc"]) == 7 + 3 + 4

    def test_counters_add_one_byte_per_key(self):
        plain = raw_interest_wire_bytes(["a", "bb"])
        with_counters = raw_interest_wire_bytes(["a", "bb"], with_counters=True)
        assert with_counters == plain + 2

    def test_utf8_lengths(self):
        assert raw_interest_wire_bytes(["日本"]) == 6 + 2


class TestRelaySemantics:
    def test_announce_and_query(self):
        r = relay()
        r.announce(["NewMoon"])
        assert "NewMoon" in r
        assert r.min_counter("NewMoon") == 50.0
        assert "other" not in r

    def test_reinforcement_adds(self):
        r = relay()
        r.announce(["k"])
        r.announce(["k"])
        assert r.min_counter("k") == 100.0

    def test_decay_removes(self):
        r = relay(decay_factor=1.0)
        r.announce(["k"])
        r.advance(49.0)
        assert "k" in r
        r.advance(51.0)
        assert "k" not in r
        assert r.is_empty()

    def test_advance_backwards_raises(self):
        r = relay(time=10.0)
        with pytest.raises(ValueError, match="backwards"):
            r.advance(5.0)

    def test_m_merge_max(self):
        a, b = relay(), relay()
        a.announce(["k"])
        a.announce(["k"])  # 100
        b.announce(["k"])  # 50
        a.m_merge(b)
        assert a.min_counter("k") == 100.0
        b.m_merge(a)
        assert b.min_counter("k") == 100.0

    def test_a_merge_sum(self):
        a, b = relay(), relay()
        a.announce(["k"])
        b.announce(["k"])
        a.a_merge(b)
        assert a.min_counter("k") == 100.0

    def test_merge_aligns_clocks_and_decays(self):
        a = relay(decay_factor=1.0)
        a.announce(["x"])
        b = relay(decay_factor=1.0)
        b.advance(20.0)
        b.announce(["y"])
        a.m_merge(b)
        assert a.time == 20.0
        assert a.min_counter("x") == 30.0  # decayed while aligning
        assert a.min_counter("y") == 50.0

    def test_merge_decays_stale_operand(self):
        a = relay(decay_factor=1.0)
        a.advance(30.0)
        b = relay(decay_factor=1.0)
        b.announce(["y"])  # 50 at t=0 -> 20 at t=30
        a.m_merge(b)
        assert a.min_counter("y") == pytest.approx(20.0)

    def test_preference_rules(self):
        a, b = relay(), relay()
        a.announce(["k"])
        a.announce(["k"])
        b.announce(["k"])
        assert a.preference("k", b) == 50.0
        assert b.preference("k", a) == -50.0
        assert a.preference("k", relay()) == 100.0

    def test_copy_independent(self):
        a = relay()
        a.announce(["k"])
        clone = a.copy()
        clone.announce(["k"])
        assert a.min_counter("k") == 50.0

    def test_never_false_positive(self):
        """The whole point: exact matching has no collisions."""
        r = relay()
        r.announce([f"key-{i}" for i in range(1000)])
        assert all(f"probe-{i}" not in r for i in range(1000))

    def test_keys_and_items_sorted(self):
        r = relay()
        r.announce(["b", "a"])
        assert r.keys() == ["a", "b"]
        assert [k for k, _ in r.items()] == ["a", "b"]

    def test_validation(self):
        with pytest.raises(ValueError):
            relay(initial_value=0)
        with pytest.raises(ValueError):
            relay(decay_factor=-1)
        with pytest.raises(ValueError):
            relay().decay(-1)


class TestRawEncodingMode:
    @pytest.fixture(scope="class")
    def runs(self):
        from repro.experiments import ExperimentConfig, run_experiment
        from repro.traces.synthetic import haggle_like

        trace = haggle_like(scale=0.03, seed=20)
        base = dict(ttl_min=600.0, min_rate_per_s=1 / 3600.0)
        return {
            "tcbf": run_experiment(trace, "B-SUB", ExperimentConfig(**base)),
            "raw": run_experiment(
                trace, "B-SUB",
                ExperimentConfig(interest_encoding="raw", **base),
            ),
        }

    def test_raw_mode_has_zero_false_positives(self, runs):
        assert runs["raw"].summary.false_positive_ratio == 0.0
        assert runs["raw"].summary.false_injection_ratio == 0.0

    def test_tcbf_mode_falsely_injects_with_crowded_filter(self):
        """The TCBF's cost: relay-filter false positives inject
        messages nobody wants (Sec. VI-B); exact strings never do.
        A 64-bit filter makes the collisions frequent enough to assert."""
        from repro.experiments import ExperimentConfig, run_experiment
        from repro.traces.synthetic import haggle_like

        trace = haggle_like(scale=0.03, seed=20)
        crowded = run_experiment(
            trace, "B-SUB",
            ExperimentConfig(
                ttl_min=600.0, min_rate_per_s=1 / 3600.0,
                num_bits=64, num_hashes=4,
            ),
        )
        assert crowded.summary.num_injections > 0
        assert crowded.summary.false_injection_ratio > 0.0

    def test_comparable_delivery(self, runs):
        """Both encodings drive the same forwarding machinery."""
        tcbf = runs["tcbf"].summary.delivery_ratio
        raw = runs["raw"].summary.delivery_ratio
        assert raw == pytest.approx(tcbf, abs=0.15)

    def test_node_state_validation(self, family):
        from repro.pubsub.node import BsubNodeState

        with pytest.raises(ValueError, match="interest_encoding"):
            BsubNodeState(0, frozenset(), family, 50.0, 0.0, 3,
                          interest_encoding="morse")
        with pytest.raises(ValueError, match="only applies"):
            BsubNodeState(0, frozenset(), family, 50.0, 0.0, 3,
                          interest_encoding="raw", relay_fill_threshold=0.3)

    def test_config_validation(self):
        from repro.pubsub.protocol import BsubConfig

        with pytest.raises(ValueError, match="interest_encoding"):
            BsubConfig(interest_encoding="utf-7")
