"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, resolve_trace


class TestResolveTrace:
    def test_builtin_generators(self):
        assert resolve_trace("haggle", 0.01, 1).num_nodes == 79
        assert resolve_trace("mit", 0.01, 1).num_nodes == 97
        assert resolve_trace("mobility", 0.05, 1).num_contacts >= 0

    def test_csv_loading(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b,0,10\n")
        trace = resolve_trace(f"csv:{path}", 1.0, 0)
        assert trace.num_contacts == 1

    def test_txt_loading(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("a b 0 10\n")
        trace = resolve_trace(f"txt:{path}", 1.0, 0)
        assert trace.num_contacts == 1

    def test_unknown_spec(self):
        with pytest.raises(SystemExit):
            resolve_trace("carrier-pigeon", 1.0, 0)


class TestCommands:
    def test_run(self, capsys):
        code = main(
            ["run", "--trace", "haggle", "--scale", "0.01",
             "--protocol", "PULL", "--ttl-min", "120",
             "--min-rate", "0.0001"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "delivery ratio" in out
        assert "PULL" in out

    def test_run_with_explicit_df(self, capsys):
        code = main(
            ["run", "--trace", "haggle", "--scale", "0.01",
             "--protocol", "B-SUB", "--ttl-min", "120", "--df", "0.5",
             "--min-rate", "0.0001"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "0.5" in out

    def test_sweep_ttl(self, capsys):
        code = main(
            ["sweep-ttl", "--trace", "haggle", "--scale", "0.01",
             "--ttl", "60", "300", "--min-rate", "0.0001"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Delivery ratio" in out
        assert "B-SUB" in out and "PUSH" in out and "PULL" in out

    def test_sweep_df(self, capsys):
        code = main(
            ["sweep-df", "--trace", "haggle", "--scale", "0.01",
             "--df-values", "0", "1", "--ttl-min", "300",
             "--min-rate", "0.0001"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Falsely delivered ratio" in out
        assert "useless-injection" in out.lower()

    def test_tables(self, capsys):
        code = main(["tables", "--scale", "0.01"])
        out = capsys.readouterr().out
        assert code == 0
        assert "NewMoon" in out
        assert "Table I" in out

    def test_stats(self, capsys):
        code = main(["stats", "--trace", "haggle", "--scale", "0.01"])
        out = capsys.readouterr().out
        assert code == 0
        assert "contacts/day" in out

    def test_export_roundtrip(self, tmp_path, capsys):
        output = tmp_path / "trace.csv"
        code = main(
            ["export", "--trace", "haggle", "--scale", "0.01",
             "--output", str(output)]
        )
        assert code == 0
        loaded = resolve_trace(f"csv:{output}", 1.0, 0)
        original = resolve_trace("haggle", 0.01, 1)
        assert loaded.num_contacts == original.num_contacts

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
