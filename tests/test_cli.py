"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, resolve_trace


class TestResolveTrace:
    def test_builtin_generators(self):
        assert resolve_trace("haggle", 0.01, 1).num_nodes == 79
        assert resolve_trace("mit", 0.01, 1).num_nodes == 97
        assert resolve_trace("mobility", 0.05, 1).num_contacts >= 0

    def test_csv_loading(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b,0,10\n")
        trace = resolve_trace(f"csv:{path}", 1.0, 0)
        assert trace.num_contacts == 1

    def test_txt_loading(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("a b 0 10\n")
        trace = resolve_trace(f"txt:{path}", 1.0, 0)
        assert trace.num_contacts == 1

    def test_unknown_spec(self):
        with pytest.raises(SystemExit):
            resolve_trace("carrier-pigeon", 1.0, 0)

    def test_dataset_loading(self, tmp_path):
        from repro.traces import haggle_like, save_trace_dataset

        original = haggle_like(scale=0.01, seed=1)
        save_trace_dataset(original, tmp_path / "ds")
        opened = resolve_trace(f"dataset:{tmp_path / 'ds'}", 1.0, 0)
        assert opened.backend == "mmap"
        assert opened.num_contacts == original.num_contacts
        columnar = resolve_trace(
            f"dataset:{tmp_path / 'ds'}", 1.0, 0, backend="columnar"
        )
        assert columnar.backend == "columnar"


class TestCommands:
    def test_run(self, capsys):
        code = main(
            ["run", "--trace", "haggle", "--scale", "0.01",
             "--protocol", "PULL", "--ttl-min", "120",
             "--min-rate", "0.0001"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "delivery ratio" in out
        assert "PULL" in out

    def test_run_with_explicit_df(self, capsys):
        code = main(
            ["run", "--trace", "haggle", "--scale", "0.01",
             "--protocol", "B-SUB", "--ttl-min", "120", "--df", "0.5",
             "--min-rate", "0.0001"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "0.5" in out

    def test_sweep_ttl(self, capsys):
        code = main(
            ["sweep-ttl", "--trace", "haggle", "--scale", "0.01",
             "--ttl", "60", "300", "--min-rate", "0.0001"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Delivery ratio" in out
        assert "B-SUB" in out and "PUSH" in out and "PULL" in out

    def test_sweep_df(self, capsys):
        code = main(
            ["sweep-df", "--trace", "haggle", "--scale", "0.01",
             "--df-values", "0", "1", "--ttl-min", "300",
             "--min-rate", "0.0001"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Falsely delivered ratio" in out
        assert "useless-injection" in out.lower()

    def test_tables(self, capsys):
        code = main(["tables", "--scale", "0.01"])
        out = capsys.readouterr().out
        assert code == 0
        assert "NewMoon" in out
        assert "Table I" in out

    def test_stats(self, capsys):
        code = main(["stats", "--trace", "haggle", "--scale", "0.01"])
        out = capsys.readouterr().out
        assert code == 0
        assert "contacts/day" in out

    def test_export_roundtrip(self, tmp_path, capsys):
        output = tmp_path / "trace.csv"
        code = main(
            ["export", "--trace", "haggle", "--scale", "0.01",
             "--output", str(output)]
        )
        assert code == 0
        loaded = resolve_trace(f"csv:{output}", 1.0, 0)
        original = resolve_trace("haggle", 0.01, 1)
        assert loaded.num_contacts == original.num_contacts

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestOutOfCoreCommands:
    @pytest.fixture(scope="class")
    def dataset(self, tmp_path_factory, request):
        path = tmp_path_factory.mktemp("cli-city") / "ds"
        code = main(
            ["synth", "--output", str(path), "--nodes", "300",
             "--contacts", "20000", "--days", "1",
             "--communities", "10", "--seed", "4"]
        )
        assert code == 0
        return path

    def test_synth_reports_dataset(self, dataset, capsys):
        assert (dataset / "meta.json").is_file()

    def test_passive_run_on_dataset(self, dataset, capsys):
        code = main(
            ["run", "--trace", f"dataset:{dataset}",
             "--protocol", "PASSIVE", "--shards", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "contacts replayed" in out
        assert "Passive replay" in out

    def test_passive_sharded_matches_serial(self, dataset, capsys):
        main(["run", "--trace", f"dataset:{dataset}",
              "--protocol", "PASSIVE"])
        serial = capsys.readouterr().out
        main(["run", "--trace", f"dataset:{dataset}",
              "--protocol", "PASSIVE", "--shards", "5"])
        sharded = capsys.readouterr().out

        def facts(text):
            return [
                line for line in text.splitlines()
                if line.startswith(("contacts replayed", "trace end",
                                    "nodes seen", "busiest"))
            ]

        assert facts(serial) == facts(sharded)

    def test_passive_rejects_observability_flags(self, dataset, tmp_path):
        with pytest.raises(SystemExit, match="--trace-out"):
            main(["run", "--trace", f"dataset:{dataset}",
                  "--protocol", "PASSIVE",
                  "--trace-out", str(tmp_path / "t.jsonl")])

    def test_active_protocol_on_windowed_dataset(self, dataset, capsys):
        code = main(
            ["run", "--trace", f"dataset:{dataset}",
             "--first-days", "0.5", "--protocol", "PULL",
             "--ttl-min", "60", "--min-rate", "0.0001", "--shards", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "delivery ratio" in out

    def test_sharded_run_matches_serial(self, capsys):
        base = ["run", "--trace", "haggle", "--scale", "0.01",
                "--protocol", "B-SUB", "--ttl-min", "120",
                "--min-rate", "0.0001"]
        main(base)
        serial = capsys.readouterr().out
        main(base + ["--shards", "4"])
        sharded = capsys.readouterr().out
        assert serial == sharded
