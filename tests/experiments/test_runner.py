"""Tests for the experiment runner."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    average_peers_met_within,
    derive_decay_factor,
    run_experiment,
)
from repro.traces.synthetic import haggle_like

from ..conftest import make_trace


@pytest.fixture(scope="module")
def tiny_trace():
    return haggle_like(scale=0.01, seed=2)


def fast_config(**overrides):
    defaults = dict(ttl_min=300.0, min_rate_per_s=1 / 7200.0)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestAveragePeersMetWithin:
    def test_simple_window(self):
        trace = make_trace(
            [(0.0, 1.0, 0, 1), (10.0, 1.0, 0, 2), (2000.0, 1.0, 0, 1)]
        )
        # window 100 s: node 0 has windows {1,2} and {1}; nodes 1,2 one
        # window each -> mean of [2, 1, 1, 1, 1] = 1.2
        assert average_peers_met_within(trace, 100.0) == pytest.approx(1.2)

    def test_empty_trace(self):
        from repro.traces.model import ContactTrace

        assert average_peers_met_within(ContactTrace([], nodes=[0]), 100.0) == 0.0

    def test_invalid_window(self):
        trace = make_trace([(0.0, 1.0, 0, 1)])
        with pytest.raises(ValueError):
            average_peers_met_within(trace, 0.0)

    def test_larger_window_more_peers(self, tiny_trace):
        small = average_peers_met_within(tiny_trace, 600.0)
        large = average_peers_met_within(tiny_trace, 6 * 3600.0)
        assert large >= small


class TestDeriveDecayFactor:
    def test_positive_and_finite(self, tiny_trace):
        df = derive_decay_factor(tiny_trace, fast_config())
        assert 0.0 < df < 100.0

    def test_shorter_ttl_larger_df(self, tiny_trace):
        short = derive_decay_factor(tiny_trace, fast_config(ttl_min=60.0))
        long = derive_decay_factor(tiny_trace, fast_config(ttl_min=1200.0))
        assert short > long

    def test_includes_delta(self, tiny_trace):
        base = derive_decay_factor(
            tiny_trace, fast_config(df_delta_per_min=0.0)
        )
        bumped = derive_decay_factor(
            tiny_trace, fast_config(df_delta_per_min=0.5)
        )
        assert bumped == pytest.approx(base + 0.5)


class TestRunExperiment:
    @pytest.mark.parametrize("protocol", ["PUSH", "B-SUB", "PULL"])
    def test_all_protocols_run(self, tiny_trace, protocol):
        result = run_experiment(tiny_trace, protocol, fast_config())
        assert result.protocol == protocol
        assert result.summary.num_messages > 0
        assert 0.0 <= result.summary.delivery_ratio <= 1.0

    def test_unknown_protocol_rejected(self, tiny_trace):
        with pytest.raises(ValueError, match="unknown protocol"):
            run_experiment(tiny_trace, "FLOOD", fast_config())

    def test_deterministic(self, tiny_trace):
        a = run_experiment(tiny_trace, "PULL", fast_config())
        b = run_experiment(tiny_trace, "PULL", fast_config())
        assert a.summary == b.summary

    def test_same_workload_across_protocols(self, tiny_trace):
        push = run_experiment(tiny_trace, "PUSH", fast_config())
        pull = run_experiment(tiny_trace, "PULL", fast_config())
        assert push.summary.num_messages == pull.summary.num_messages
        assert push.summary.num_intended_pairs == pull.summary.num_intended_pairs

    def test_bsub_auto_df(self, tiny_trace):
        result = run_experiment(tiny_trace, "B-SUB", fast_config())
        assert result.decay_factor_per_min > 0.0

    def test_bsub_explicit_df(self, tiny_trace):
        config = fast_config(decay_factor_per_min=0.5)
        result = run_experiment(tiny_trace, "B-SUB", config)
        assert result.decay_factor_per_min == 0.5

    def test_broker_fraction_only_for_bsub(self, tiny_trace):
        bsub = run_experiment(tiny_trace, "B-SUB", fast_config())
        push = run_experiment(tiny_trace, "PUSH", fast_config())
        assert bsub.broker_fraction > 0.0
        assert push.broker_fraction == 0.0

    def test_engine_report_attached(self, tiny_trace):
        result = run_experiment(tiny_trace, "PULL", fast_config())
        assert result.engine.num_contacts == tiny_trace.num_contacts

    def test_baselines_never_deliver_falsely(self, tiny_trace):
        for name in ("PUSH", "PULL"):
            result = run_experiment(tiny_trace, name, fast_config())
            assert result.summary.num_false_deliveries == 0
