"""Tests for the TTL and DF sweeps."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.sweeps import df_sweep, ttl_sweep
from repro.traces.synthetic import haggle_like


@pytest.fixture(scope="module")
def tiny_trace():
    return haggle_like(scale=0.01, seed=4)


@pytest.fixture(scope="module")
def base_config():
    return ExperimentConfig(min_rate_per_s=1 / 7200.0)


class TestTtlSweep:
    def test_shape(self, tiny_trace, base_config):
        sweep = ttl_sweep(
            tiny_trace,
            ttl_values_min=(60.0, 600.0),
            base_config=base_config,
        )
        assert set(sweep) == {"PUSH", "B-SUB", "PULL"}
        assert all(len(results) == 2 for results in sweep.values())

    def test_ttls_recorded_in_order(self, tiny_trace, base_config):
        sweep = ttl_sweep(
            tiny_trace, ttl_values_min=(60.0, 600.0), base_config=base_config
        )
        assert [r.ttl_min for r in sweep["PUSH"]] == [60.0, 600.0]

    def test_df_rederived_per_ttl(self, tiny_trace, base_config):
        sweep = ttl_sweep(
            tiny_trace,
            ttl_values_min=(60.0, 600.0),
            protocols=("B-SUB",),
            base_config=base_config,
        )
        dfs = [r.decay_factor_per_min for r in sweep["B-SUB"]]
        assert dfs[0] > dfs[1]  # shorter TTL -> faster decay

    def test_protocol_subset(self, tiny_trace, base_config):
        sweep = ttl_sweep(
            tiny_trace,
            ttl_values_min=(60.0,),
            protocols=("PULL",),
            base_config=base_config,
        )
        assert set(sweep) == {"PULL"}

    def test_delivery_ratio_nondecreasing_in_ttl(self, tiny_trace, base_config):
        """Figs. 7(a)/8(a): longer TTLs can only help delivery."""
        sweep = ttl_sweep(
            tiny_trace,
            ttl_values_min=(30.0, 1200.0),
            protocols=("PUSH",),
            base_config=base_config,
        )
        ratios = [r.summary.delivery_ratio for r in sweep["PUSH"]]
        assert ratios[1] >= ratios[0]


class TestDfSweep:
    def test_runs_bsub_at_each_df(self, tiny_trace, base_config):
        results = df_sweep(
            tiny_trace,
            df_values_per_min=(0.0, 1.0),
            ttl_min=600.0,
            base_config=base_config,
        )
        assert [r.decay_factor_per_min for r in results] == [0.0, 1.0]
        assert all(r.protocol == "B-SUB" for r in results)

    def test_fixed_ttl(self, tiny_trace, base_config):
        results = df_sweep(
            tiny_trace,
            df_values_per_min=(0.5,),
            ttl_min=240.0,
            base_config=base_config,
        )
        assert results[0].ttl_min == 240.0

    def test_high_df_reduces_forwardings(self, tiny_trace, base_config):
        """Fig. 9(c): interests stop propagating at huge DF, so the
        relay path dries up and forwarding overhead falls."""
        results = df_sweep(
            tiny_trace,
            df_values_per_min=(0.0, 50.0),
            ttl_min=600.0,
            base_config=base_config,
        )
        free, strangled = results
        assert (
            strangled.summary.num_forwardings <= free.summary.num_forwardings
        )
