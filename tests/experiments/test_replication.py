"""Tests for multi-seed replication."""

import math

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.replication import MetricStats, _stats, run_replicated
from repro.traces.synthetic import haggle_like


def factory(seed):
    return haggle_like(scale=0.01, seed=seed)


def config():
    return ExperimentConfig(ttl_min=300.0, min_rate_per_s=1 / 7200.0)


class TestMetricStats:
    def test_mean_and_std(self):
        stats = _stats([1.0, 2.0, 3.0])
        assert stats.mean == 2.0
        assert stats.std == pytest.approx(1.0)
        assert stats.count == 3

    def test_single_value(self):
        stats = _stats([5.0])
        assert stats.mean == 5.0
        assert stats.std == 0.0

    def test_nans_filtered(self):
        stats = _stats([1.0, float("nan"), 3.0])
        assert stats.mean == 2.0
        assert stats.count == 2

    def test_all_nan(self):
        stats = _stats([float("nan")])
        assert math.isnan(stats.mean)
        assert stats.count == 0

    def test_str_format(self):
        assert "n=3" in str(_stats([1.0, 2.0, 3.0]))


class TestRunReplicated:
    def test_aggregates_over_seeds(self):
        result = run_replicated(factory, "PULL", config(), seeds=(0, 1, 2))
        assert len(result.runs) == 3
        assert result["delivery_ratio"].count == 3
        assert 0.0 <= result["delivery_ratio"].mean <= 1.0

    def test_seeds_produce_different_runs(self):
        result = run_replicated(factory, "PULL", config(), seeds=(0, 1))
        ratios = [r.summary.delivery_ratio for r in result.runs]
        assert ratios[0] != ratios[1]

    def test_deterministic_overall(self):
        a = run_replicated(factory, "PULL", config(), seeds=(0, 1))
        b = run_replicated(factory, "PULL", config(), seeds=(0, 1))
        assert a["delivery_ratio"].mean == b["delivery_ratio"].mean

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            run_replicated(factory, "PULL", config(), seeds=())

    def test_all_metrics_present(self):
        result = run_replicated(factory, "PUSH", config(), seeds=(0,))
        assert set(result.metrics) == {
            "delivery_ratio",
            "mean_delay_min",
            "forwardings_per_delivered",
            "false_positive_ratio",
            "broker_fraction",
        }

    def test_ordering_stable_across_seeds(self):
        """PUSH beats PULL in the mean, not just in one lucky seed."""
        push = run_replicated(factory, "PUSH", config(), seeds=(0, 1, 2))
        pull = run_replicated(factory, "PULL", config(), seeds=(0, 1, 2))
        assert push["delivery_ratio"].mean > pull["delivery_ratio"].mean
