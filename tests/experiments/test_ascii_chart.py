"""Tests for the ASCII chart renderer."""

import pytest

from repro.experiments.report import ascii_chart


class TestAsciiChart:
    def test_basic_render(self):
        chart = ascii_chart(
            [1, 2, 3], {"PUSH": [0.1, 0.5, 0.9]}, height=5, title="T"
        )
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert "P=PUSH" in chart
        assert "0.9" in chart and "0.1" in chart

    def test_extremes_on_first_and_last_rows(self):
        chart = ascii_chart([1, 2], {"S": [0.0, 1.0]}, height=4)
        lines = chart.splitlines()
        assert "S" in lines[0]       # max on top row
        assert "S" in lines[3]       # min on bottom row

    def test_overlap_marker(self):
        chart = ascii_chart(
            [1], {"A": [0.5], "B": [0.5]}, height=3
        )
        assert "*" in chart

    def test_marker_disambiguation(self):
        chart = ascii_chart(
            [1, 2], {"PUSH": [0.0, 1.0], "PULL": [1.0, 0.0]}, height=4
        )
        assert "P=PUSH" in chart
        assert "U=PULL" in chart  # P taken, falls through to U

    def test_nan_points_skipped(self):
        chart = ascii_chart(
            [1, 2, 3], {"S": [float("nan"), 0.5, 1.0]}, height=4
        )
        assert "S" in chart

    def test_all_nan(self):
        chart = ascii_chart([1], {"S": [float("nan")]})
        assert "no finite data" in chart

    def test_constant_series(self):
        chart = ascii_chart([1, 2, 3], {"S": [0.5, 0.5, 0.5]}, height=4)
        assert chart.count("S") >= 3 + 1  # 3 points + legend

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="points"):
            ascii_chart([1, 2], {"S": [1.0]})

    def test_height_validation(self):
        with pytest.raises(ValueError, match="height"):
            ascii_chart([1], {"S": [1.0]}, height=1)
