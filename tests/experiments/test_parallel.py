"""Tests for the parallel sweep/replication execution layer."""

import dataclasses
import math
import os

import pytest

from repro.experiments import ExperimentConfig, run_replicated, ttl_sweep
from repro.experiments.parallel import RunTask, execute_tasks, resolve_jobs
from repro.experiments.sweeps import df_sweep
from repro.traces.synthetic import haggle_like


def assert_summaries_equal(a, b):
    """Field-wise equality that treats NaN == NaN (empty-cell metrics).

    A summary that crosses a process boundary gets fresh NaN objects, so
    the dataclass identity shortcut that makes ``nan == nan`` pass
    in-process does not apply; compare values explicitly instead.
    """
    for field in dataclasses.fields(a):
        va, vb = getattr(a, field.name), getattr(b, field.name)
        if isinstance(va, float) and math.isnan(va):
            assert isinstance(vb, float) and math.isnan(vb), field.name
        else:
            assert va == vb, field.name


class TestResolveJobs:
    def test_none_means_serial(self):
        assert resolve_jobs(None) == 1

    def test_positive_passthrough(self):
        assert resolve_jobs(3) == 3

    def test_nonpositive_means_all_cpus(self):
        cpus = os.cpu_count() or 1
        assert resolve_jobs(0) == cpus
        assert resolve_jobs(-1) == cpus

    def test_unsharded_never_warns(self, recwarn):
        resolve_jobs(64, shards=1)
        assert not [w for w in recwarn if w.category is RuntimeWarning]

    def test_sharded_clamps_to_cpu_budget(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        with pytest.warns(RuntimeWarning, match="clamping jobs to 2"):
            assert resolve_jobs(8, shards=4) == 2

    def test_sharded_within_budget_passes_through(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert resolve_jobs(2, shards=4) == 2

    def test_sharded_never_clamps_below_one(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        with pytest.warns(RuntimeWarning):
            assert resolve_jobs(4, shards=4) == 1


@pytest.fixture(scope="module")
def small_trace():
    return haggle_like(scale=0.01, seed=3)


@pytest.fixture(scope="module")
def small_config():
    return ExperimentConfig(interests_per_node=2, min_rate_per_s=1 / 3600.0)


class TestExecuteTasks:
    def test_empty_task_list(self):
        assert execute_tasks([], jobs=4) == []

    def test_serial_runs_in_order(self, small_trace, small_config):
        tasks = [
            RunTask(small_trace, name, small_config.with_ttl(240).with_df(0.1))
            for name in ("PUSH", "PULL")
        ]
        results = execute_tasks(tasks, jobs=1)
        assert [r.protocol for r in results] == ["PUSH", "PULL"]

    def test_parallel_matches_serial(self, small_trace, small_config):
        config = small_config.with_ttl(240).with_df(0.1)
        tasks = [
            RunTask(small_trace, name, config)
            for name in ("PUSH", "B-SUB", "PULL")
        ]
        serial = execute_tasks(tasks, jobs=1)
        parallel = execute_tasks(tasks, jobs=2)
        assert [r.protocol for r in parallel] == [r.protocol for r in serial]
        for s, p in zip(serial, parallel):
            assert_summaries_equal(s.summary, p.summary)
            assert s.decay_factor_per_min == p.decay_factor_per_min
            assert s.engine.bytes_transferred == p.engine.bytes_transferred


class TestSweepJobs:
    def test_ttl_sweep_parallel_identical(self, small_trace, small_config):
        kwargs = dict(
            ttl_values_min=[120.0, 360.0],
            protocols=("PUSH", "PULL"),
            base_config=small_config,
        )
        serial = ttl_sweep(small_trace, jobs=1, **kwargs)
        parallel = ttl_sweep(small_trace, jobs=2, **kwargs)
        assert serial.keys() == parallel.keys()
        for name in serial:
            assert [r.ttl_min for r in serial[name]] == [120.0, 360.0]
            for s, p in zip(serial[name], parallel[name]):
                assert_summaries_equal(s.summary, p.summary)

    def test_df_sweep_parallel_identical(self, small_trace, small_config):
        kwargs = dict(
            df_values_per_min=[0.0, 0.5],
            ttl_min=240.0,
            base_config=small_config,
        )
        serial = df_sweep(small_trace, jobs=1, **kwargs)
        parallel = df_sweep(small_trace, jobs=2, **kwargs)
        assert [r.decay_factor_per_min for r in serial] == [0.0, 0.5]
        for s, p in zip(serial, parallel):
            assert_summaries_equal(s.summary, p.summary)


class TestReplicationJobs:
    def test_run_replicated_parallel_identical(self, small_config):
        def factory(seed):
            return haggle_like(scale=0.01, seed=seed)

        config = small_config.with_ttl(240).with_df(0.1)
        serial = run_replicated(
            factory, "B-SUB", config=config, seeds=(0, 1), jobs=1
        )
        parallel = run_replicated(
            factory, "B-SUB", config=config, seeds=(0, 1), jobs=2
        )
        for metric in serial.metrics:
            sm, pm = serial.metrics[metric], parallel.metrics[metric]
            assert sm.count == pm.count
            if math.isnan(sm.mean):
                assert math.isnan(pm.mean)
            else:
                assert sm.mean == pm.mean and sm.std == pm.std
        for s, p in zip(serial.runs, parallel.runs):
            assert_summaries_equal(s.summary, p.summary)
