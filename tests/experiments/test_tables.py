"""Tests for Table I / Table II regeneration."""

import pytest

from repro.experiments.tables import (
    PAPER_TABLE_I,
    format_table_i,
    format_table_ii,
    table_i_rows,
    table_ii_rows,
)
from repro.traces.synthetic import haggle_like, mit_reality_like


class TestTableI:
    def test_rows_report_measured_stats(self):
        trace = haggle_like(scale=0.02, seed=0)
        rows = table_i_rows([trace])
        name, days, nodes, contacts = rows[0]
        assert name == trace.name
        assert nodes == 79
        assert contacts == trace.num_contacts
        assert days <= 3.01

    def test_paper_reference_values(self):
        haggle = PAPER_TABLE_I["Haggle(Infocom'06)"]
        assert haggle["Number of nodes"] == 79
        assert haggle["Number of contacts"] == 67_360
        mit = PAPER_TABLE_I["MIT reality"]
        assert mit["Number of nodes"] == 97
        assert mit["Number of contacts"] == 54_667
        assert mit["Duration (days)"] == 246

    def test_format_includes_paper_rows(self):
        text = format_table_i([haggle_like(scale=0.02), mit_reality_like(scale=0.02)])
        assert "(paper) Haggle(Infocom'06)" in text
        assert "(paper) MIT reality" in text
        assert "67,360" in text

    def test_full_scale_presets_match_paper_counts(self):
        """At scale 1.0 the synthetic traces are calibrated to Table I's
        node and contact counts (contacts within 10 %)."""
        haggle = haggle_like(seed=0)
        assert haggle.num_nodes == 79
        assert abs(haggle.num_contacts - 67_360) / 67_360 < 0.10


class TestTableII:
    def test_top4_match_published(self):
        rows = table_ii_rows()
        assert [k for k, _ in rows] == [
            "NewMoon",
            "Twitter'sNew",
            "funnybutnotcool",
            "openwebawards",
        ]
        assert [w for _, w in rows] == [0.132, 0.103, 0.0887, 0.0739]

    def test_format_shows_paper_column(self):
        text = format_table_ii()
        assert "NewMoon" in text
        assert "0.132" in text
        assert "Paper" in text

    def test_custom_top_count(self):
        assert len(table_ii_rows(top=10)) == 10
