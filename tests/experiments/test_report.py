"""Tests for result formatting."""

import math

import pytest

from repro.experiments.report import (
    figure_series,
    format_table,
    metric_series,
    series_table,
)


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.333]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].split() == ["a", "bb"]
        assert "0.333" in text

    def test_handles_nan_and_large_numbers(self):
        text = format_table(["x"], [[float("nan")], [123_456.0]])
        assert "nan" in text
        assert "123,456" in text

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text


class TestSeriesTable:
    def test_renders_all_series(self):
        text = series_table(
            "TTL", [10, 100], {"PUSH": [0.5, 0.9], "PULL": [0.1, 0.4]}
        )
        assert "PUSH" in text and "PULL" in text
        assert "0.9" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="points"):
            series_table("x", [1, 2], {"s": [1.0]})


class TestMetricSeries:
    def _results(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_experiment
        from repro.traces.synthetic import haggle_like

        trace = haggle_like(scale=0.01, seed=6)
        config = ExperimentConfig(ttl_min=300, min_rate_per_s=1 / 7200.0)
        return [run_experiment(trace, "PULL", config)]

    def test_known_metrics(self):
        results = self._results()
        assert metric_series(results, "delivery_ratio")[0] == results[
            0
        ].summary.delivery_ratio
        assert metric_series(results, "fpr") == [0.0]
        for metric in ("delay_min", "forwardings"):
            value = metric_series(results, metric)[0]
            assert isinstance(value, float)

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown metric"):
            metric_series([], "latency")

    def test_figure_series(self):
        results = self._results()
        series = figure_series({"PULL": results}, "delivery_ratio")
        assert set(series) == {"PULL"}
        assert len(series["PULL"]) == 1
