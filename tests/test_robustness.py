"""Failure-injection and adversarial-condition tests.

Each test puts the full stack (workload → simulator → protocol →
metrics) into a degenerate or hostile regime and checks it degrades
gracefully: no crashes, conserved invariants, sane metrics.
"""

import math

import pytest

from repro.dtn.events import MessageEvent
from repro.dtn.simulator import Simulation
from repro.experiments import ExperimentConfig, run_experiment
from repro.pubsub.baselines import PushProtocol
from repro.pubsub.messages import Message
from repro.pubsub.metrics import MetricsCollector
from repro.pubsub.protocol import BsubConfig, BsubProtocol
from repro.traces.model import ContactTrace
from repro.traces.synthetic import haggle_like

from .conftest import make_trace


def tiny_trace():
    return haggle_like(scale=0.01, seed=30)


def fast(**overrides):
    defaults = dict(ttl_min=120.0, min_rate_per_s=1 / 7200.0)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestStarvedChannels:
    def test_zero_effective_bandwidth(self):
        """A rate too small for even one filter: nothing moves, nothing breaks."""
        result = run_experiment(tiny_trace(), "B-SUB", fast(rate_bps=0.01))
        assert result.summary.num_deliveries == 0
        assert result.engine.bytes_transferred == 0.0
        assert result.engine.refused_transfers > 0

    def test_push_on_trickle_channel(self):
        """A few bytes per contact: a handful of tiny messages may trickle
        through but flooding is crippled versus full bandwidth."""
        starved = run_experiment(tiny_trace(), "PUSH", fast(rate_bps=8))
        full = run_experiment(tiny_trace(), "PUSH", fast(rate_bps=None))
        assert starved.engine.refused_transfers > 0
        assert (
            starved.summary.num_intended_deliveries
            < 0.2 * max(full.summary.num_intended_deliveries, 1)
        )

    def test_protocols_still_account_contacts(self):
        trace = tiny_trace()
        result = run_experiment(trace, "PULL", fast(rate_bps=1))
        assert result.engine.num_contacts == trace.num_contacts


class TestDegenerateInterests:
    def test_nobody_interested_in_anything(self):
        """Interests map empty: zero intended pairs, NaN ratios, no crash."""
        trace = make_trace([(10.0 * i, 5.0, 0, 1) for i in range(5)])
        interests = {0: frozenset(), 1: frozenset()}
        metrics = MetricsCollector(interests, "B-SUB")
        protocol = BsubProtocol(interests, metrics, BsubConfig())
        events = [
            MessageEvent(1.0, 0, Message.create("k", 0, 1.0, 1000.0))
        ]
        Simulation(trace, protocol, events, rate_bps=None).run()
        summary = metrics.summary()
        assert summary.num_intended_pairs == 0
        assert math.isnan(summary.delivery_ratio)
        assert summary.num_deliveries == 0

    def test_everyone_wants_the_same_key(self):
        trace = tiny_trace()
        config = fast(interests_per_node=1, interest_seed=1)
        from repro.workload.keys import KeyDistribution

        monoculture = KeyDistribution.uniform(["TheOnlyTopic"])
        result = run_experiment(trace, "PUSH", config, monoculture)
        # every message is wanted by every other node
        assert result.summary.num_intended_pairs == (
            result.summary.num_messages * (trace.num_nodes - 1)
        )

    def test_saturated_filter_still_classifies_correctly(self):
        """An 8-bit filter matches everything; deliveries explode but
        the metrics still separate intended from false."""
        trace = tiny_trace()
        result = run_experiment(
            trace, "B-SUB", fast(num_bits=8, num_hashes=2)
        )
        summary = result.summary
        assert summary.num_deliveries >= summary.num_intended_deliveries
        assert (
            summary.num_intended_deliveries + summary.num_false_deliveries
            == summary.num_deliveries
        )
        # saturated filters mean lots of false traffic
        assert summary.false_positive_ratio > 0.0


class TestHostileTiming:
    def test_ttl_shorter_than_first_contact_gap(self):
        trace = make_trace([(10_000.0, 10.0, 0, 1)])
        interests = {0: frozenset(), 1: frozenset({"k"})}
        metrics = MetricsCollector(interests, "B-SUB")
        protocol = BsubProtocol(interests, metrics, BsubConfig())
        events = [MessageEvent(0.0, 0, Message.create("k", 0, 0.0, 60.0))]
        Simulation(trace, protocol, events, rate_bps=None).run()
        assert metrics.summary().num_deliveries == 0

    def test_simultaneous_contacts(self):
        """Multiple contacts at the same instant are all processed."""
        trace = make_trace(
            [(100.0, 10.0, 0, 1), (100.0, 10.0, 2, 3), (100.0, 10.0, 1, 2)]
        )
        interests = {n: frozenset({"k"}) for n in range(4)}
        metrics = MetricsCollector(interests, "PUSH")
        protocol = PushProtocol(interests, metrics)
        events = [MessageEvent(0.0, 0, Message.create("k", 0, 0.0, 1e6))]
        report = Simulation(trace, protocol, events, rate_bps=None).run()
        assert report.num_contacts == 3

    def test_extreme_decay_factor(self):
        """DF so large interests die instantly: B-SUB degenerates to
        direct delivery only, without errors."""
        result = run_experiment(
            tiny_trace(), "B-SUB", fast(decay_factor_per_min=1e6)
        )
        summary = result.summary
        assert 0.0 <= summary.delivery_ratio <= 1.0
        # relay path dead -> at most direct-contact deliveries
        assert summary.num_injections == 0 or summary.num_injections < 100

    def test_message_storm_with_short_ttl(self):
        """High message rate + tiny TTL: buffers must not grow without
        bound thanks to expiry purging."""
        trace = haggle_like(scale=0.01, seed=31)
        config = fast(ttl_min=5.0, min_rate_per_s=1 / 300.0)
        result = run_experiment(trace, "PUSH", config)
        assert result.summary.num_messages > 1000
        assert 0.0 <= result.summary.delivery_ratio <= 1.0


class TestEmptyWorlds:
    def test_empty_trace_all_protocols(self):
        trace = ContactTrace([], nodes=range(5), name="void")
        for name in ("PUSH", "B-SUB", "PULL"):
            result = run_experiment(trace, name, fast())
            assert result.summary.num_deliveries == 0
            assert result.engine.num_contacts == 0

    def test_two_hermits(self):
        """Two nodes that never meet: messages are created and expire."""
        trace = ContactTrace([], nodes=range(2), name="hermits")
        result = run_experiment(trace, "B-SUB", fast())
        assert result.summary.num_messages == 0  # zero centrality -> no rate

    def test_single_pair_dense_meetings(self):
        trace = make_trace([(i * 100.0, 50.0, 0, 1) for i in range(200)])
        interests = {0: frozenset({"k"}), 1: frozenset({"k"})}
        metrics = MetricsCollector(interests, "B-SUB")
        protocol = BsubProtocol(interests, metrics, BsubConfig())
        events = [
            MessageEvent(t, 0, Message.create("k", 0, t, 5_000.0))
            for t in (0.0, 500.0, 900.0)
        ]
        Simulation(trace, protocol, events, rate_bps=None).run()
        # node 1 gets all three via direct delivery
        assert metrics.summary().num_intended_deliveries == 3


class TestConservation:
    def test_deliveries_never_exceed_messages_times_nodes(self):
        trace = tiny_trace()
        for name in ("PUSH", "B-SUB", "PULL"):
            result = run_experiment(trace, name, fast())
            summary = result.summary
            assert summary.num_deliveries <= (
                summary.num_messages * trace.num_nodes
            )

    def test_forwardings_nonnegative_and_bounded(self):
        result = run_experiment(tiny_trace(), "PUSH", fast())
        assert 0 <= result.summary.num_forwardings
        # epidemic: at most messages x (nodes - 1) replications
        assert result.summary.num_forwardings <= (
            result.summary.num_messages * 79
        )

    def test_tx_equals_rx(self):
        result = run_experiment(tiny_trace(), "B-SUB", fast())
        tx = sum(result.engine.tx_bytes_by_node.values())
        rx = sum(result.engine.rx_bytes_by_node.values())
        assert tx == pytest.approx(rx)
