"""End-to-end integration tests: the paper's qualitative claims.

These run all three protocols over a shared synthetic trace (one
module-scoped sweep) and assert the relationships Figs. 7-9 report —
who wins, in which order, and within which bounds.  Absolute values are
trace-dependent; orderings are not.
"""

import pytest

from repro.core.analysis import false_positive_rate
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.traces.synthetic import haggle_like, mit_reality_like


@pytest.fixture(scope="module")
def trace():
    return haggle_like(scale=0.08, seed=1)


@pytest.fixture(scope="module")
def results(trace):
    config = ExperimentConfig(ttl_min=600.0, min_rate_per_s=1 / 3600.0)
    return {
        name: run_experiment(trace, name, config)
        for name in ("PUSH", "B-SUB", "PULL")
    }


class TestFig7Orderings:
    def test_delivery_ratio_ordering(self, results):
        """Fig. 7(a): PUSH >= B-SUB > PULL."""
        push = results["PUSH"].summary.delivery_ratio
        bsub = results["B-SUB"].summary.delivery_ratio
        pull = results["PULL"].summary.delivery_ratio
        assert push >= bsub > pull

    def test_delay_ordering(self, results):
        """Fig. 7(b): PUSH fastest, PULL slowest."""
        push = results["PUSH"].summary.mean_delay_s
        bsub = results["B-SUB"].summary.mean_delay_s
        pull = results["PULL"].summary.mean_delay_s
        assert push <= bsub
        assert bsub <= pull * 1.1  # B-SUB clearly better than PULL

    def test_forwardings_ordering(self, results):
        """Fig. 7(c): PUSH most expensive, PULL exactly one per delivery."""
        push = results["PUSH"].summary.forwardings_per_delivered
        bsub = results["B-SUB"].summary.forwardings_per_delivered
        pull = results["PULL"].summary.forwardings_per_delivered
        assert push > bsub > pull
        assert pull == pytest.approx(1.0)

    def test_bsub_close_to_push(self, results):
        """'B-SUB is only slightly lower than PUSH' — we accept within
        a factor on the reduced-scale trace."""
        push = results["PUSH"].summary.delivery_ratio
        bsub = results["B-SUB"].summary.delivery_ratio
        assert bsub > 0.55 * push

    def test_bsub_much_cheaper_than_push(self, results):
        """'B-SUB consumes much less resources than PUSH.'"""
        push = results["PUSH"].summary.forwardings_per_delivered
        bsub = results["B-SUB"].summary.forwardings_per_delivered
        assert bsub < 0.5 * push


class TestFalsePositiveBounds:
    def test_baselines_fpr_zero(self, results):
        assert results["PUSH"].summary.false_positive_ratio == 0.0
        assert results["PULL"].summary.false_positive_ratio == 0.0

    def test_bsub_false_positive_traffic_bounded(self, results):
        """Fig. 9(d): false-positive traffic stays in the neighbourhood
        of the worst-case filter FPR (0.04 for 38 keys).  With faithful
        single-interest consumer filters the *delivered* FPR is
        essentially zero; the Bloom cost shows up on the injection side
        (see bench_fig9's panel-d note)."""
        bound = false_positive_rate(38, 256, 4)
        summary = results["B-SUB"].summary
        assert summary.false_positive_ratio <= 0.01
        assert summary.false_injection_ratio <= bound
        assert summary.useless_injection_ratio <= 3 * bound
        assert summary.num_injections > 0

    def test_bsub_broker_fraction_moderate(self, results):
        """Sec. VII-A targets ≈30 % brokers with thresholds 3/5."""
        assert 0.1 <= results["B-SUB"].broker_fraction <= 0.6


class TestCrossTrace:
    def test_mit_sparser_lower_delivery(self):
        """Fig. 8 vs Fig. 7: 'the MIT Reality trace forms a sparser
        network ... so the delivery ratio is lower'."""
        config = ExperimentConfig(ttl_min=600.0, min_rate_per_s=1 / 3600.0)
        haggle = run_experiment(haggle_like(scale=0.08, seed=1), "PUSH", config)
        mit = run_experiment(mit_reality_like(scale=0.08, seed=1), "PUSH", config)
        assert mit.summary.delivery_ratio < haggle.summary.delivery_ratio


class TestWorkloadConservation:
    def test_identical_workload_across_protocols(self, results):
        messages = {r.summary.num_messages for r in results.values()}
        pairs = {r.summary.num_intended_pairs for r in results.values()}
        assert len(messages) == 1
        assert len(pairs) == 1

    def test_deliveries_bounded_by_pairs(self, results):
        for r in results.values():
            assert r.summary.num_intended_deliveries <= r.summary.num_intended_pairs

    def test_engine_counts(self, results, trace):
        for r in results.values():
            assert r.engine.num_contacts == trace.num_contacts
