"""The typed public API (``repro.api``) and its deprecation shims.

Three contracts under test:

1. ``ExperimentSpec`` round-trips losslessly to/from the engine-level
   ``ExperimentConfig`` and validates its inputs eagerly;
2. the ``run()``/``sweep()``/``replicate()`` entry points produce the
   same numbers as the legacy call paths they replace;
3. every legacy entry point still works but warns exactly once with a
   ``DeprecationWarning`` pointing at its typed replacement.
"""

import dataclasses
import warnings

import pytest

from repro.api import ExperimentSpec, replicate, run, sweep
from repro.experiments import (
    ExperimentConfig,
    df_sweep,
    run_experiment,
    run_replicated,
    ttl_sweep,
)
from repro.faults import FaultSpec
from repro.traces import haggle_like

CONFIG = dict(
    ttl_min=120.0, min_rate_per_s=1 / 1800.0, num_bits=32, num_hashes=2
)


@pytest.fixture(scope="module")
def trace():
    return haggle_like(scale=0.01, seed=3)


class TestSpecValidation:
    def test_defaults_mirror_engine_defaults(self):
        spec = ExperimentSpec()
        config = spec.to_config()
        assert config == ExperimentConfig()
        assert spec.protocol == "B-SUB"

    def test_unknown_protocol_rejected_eagerly(self):
        with pytest.raises(ValueError, match="protocol"):
            ExperimentSpec(protocol="GOSSIP")

    def test_faults_field_is_typed(self):
        with pytest.raises(TypeError, match="FaultSpec"):
            ExperimentSpec(faults={"frame_loss": 0.5})
        spec = ExperimentSpec(faults=FaultSpec(frame_loss=0.5))
        assert spec.faults.frame_loss == 0.5

    def test_spec_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ExperimentSpec().ttl_min = 10.0


class TestRoundTrip:
    def test_to_config_from_config_is_identity(self):
        spec = ExperimentSpec(
            ttl_min=240.0, df_per_min=0.4, num_bits=512, num_hashes=5,
            copy_limit=2, faults=FaultSpec(frame_loss=0.1),
            protocol="PULL",
        )
        back = ExperimentSpec.from_config(spec.to_config(), protocol="PULL")
        assert back == spec

    def test_df_rename_maps_to_engine_field(self):
        config = ExperimentSpec(df_per_min=0.25).to_config()
        assert config.decay_factor_per_min == 0.25
        assert ExperimentSpec.from_config(config).df_per_min == 0.25

    def test_with_helpers_return_new_specs(self):
        spec = ExperimentSpec()
        assert spec.with_protocol("PUSH").protocol == "PUSH"
        assert spec.with_ttl(60.0).ttl_min == 60.0
        assert spec.with_df(0.1).df_per_min == 0.1
        faults = FaultSpec(frame_loss=0.2)
        assert spec.with_faults(faults).faults is faults
        assert spec.faults is None  # original untouched


class TestEquivalence:
    """New entry points reproduce the legacy numbers exactly."""

    def test_run_matches_run_experiment(self, trace):
        config = ExperimentConfig(**CONFIG)
        new = run(trace, ExperimentSpec.from_config(config))
        with pytest.warns(DeprecationWarning, match="repro.api.run"):
            old = run_experiment(trace, "B-SUB", config)
        assert new.summary == old.summary
        assert new.decay_factor_per_min == old.decay_factor_per_min

    def test_sweep_ttl_matches_ttl_sweep(self, trace):
        config = ExperimentConfig(**CONFIG)
        ttls = [60.0, 120.0]
        new = sweep(trace, ExperimentSpec.from_config(config),
                    ttl_min=ttls, protocols=["B-SUB"])
        with pytest.warns(DeprecationWarning, match="repro.api.sweep"):
            old = ttl_sweep(trace, ttls, protocols=["B-SUB"],
                            base_config=config)
        assert [r.summary for r in new["B-SUB"]] == [
            r.summary for r in old["B-SUB"]
        ]

    def test_sweep_df_matches_df_sweep(self, trace):
        config = ExperimentConfig(**CONFIG)
        dfs = [0.0, 0.5]
        new = sweep(trace, ExperimentSpec.from_config(config), df_per_min=dfs)
        with pytest.warns(DeprecationWarning, match="repro.api.sweep"):
            old = df_sweep(trace, dfs, ttl_min=CONFIG["ttl_min"],
                           base_config=config)
        assert [r.summary for r in new] == [r.summary for r in old]
        assert [r.decay_factor_per_min for r in new] == dfs

    def test_replicate_matches_run_replicated(self):
        config = ExperimentConfig(**CONFIG)

        def factory(seed):
            return haggle_like(scale=0.01, seed=seed)

        new = replicate(factory, ExperimentSpec.from_config(config),
                        seeds=(0, 1))
        with pytest.warns(DeprecationWarning, match="repro.api.replicate"):
            old = run_replicated(factory, "B-SUB", config, seeds=(0, 1))
        assert new.metrics == old.metrics
        assert new["delivery_ratio"].count == 2


class TestSweepGuards:
    def test_exactly_one_axis_required(self, trace):
        with pytest.raises(TypeError, match="exactly one"):
            sweep(trace)
        with pytest.raises(TypeError, match="exactly one"):
            sweep(trace, ttl_min=[60.0], df_per_min=[0.1])

    def test_protocols_invalid_for_df_axis(self, trace):
        with pytest.raises(TypeError, match="TTL sweep"):
            sweep(trace, df_per_min=[0.1], protocols=["B-SUB"])


class TestDeprecationShims:
    def test_every_shim_warns(self, trace):
        # The message pattern is load-bearing: pyproject's filterwarnings
        # silences exactly these strings for downstream suites.
        config = ExperimentConfig(**CONFIG)
        with pytest.warns(DeprecationWarning,
                          match="is deprecated; use repro.api"):
            run_experiment(trace, "B-SUB", config)

    def test_new_path_never_warns(self, trace):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run(trace, ExperimentSpec.from_config(ExperimentConfig(**CONFIG)))
