#!/usr/bin/env python
"""Twitter-trend dissemination over a conference contact network.

The scenario the paper's introduction motivates: conference attendees
carry Bluetooth devices, subscribe to trending topics (the Table II
key distribution), and posts of at most 140 bytes propagate by
store-carry-forward.  This example reproduces a slice of the paper's
headline comparison (Fig. 7) and prints the regenerated Table II.

Run:  python examples/twitter_dissemination.py  [scale]
"""

import sys

from repro.experiments import (
    ExperimentConfig,
    figure_series,
    format_table_ii,
    run_experiment,
    series_table,
    ttl_sweep,
)
from repro.traces import haggle_like
from repro.workload import assign_interests, consumers_of, twitter_trends_2009


def main(scale: float = 0.05):
    distribution = twitter_trends_2009()
    print(format_table_ii(distribution))
    print(f"\naverage key length: {distribution.average_key_length():.1f} bytes "
          "(paper: 11.5)\n")

    trace = haggle_like(scale=scale, seed=1)
    print(f"simulating on {trace}\n")

    # Who subscribes to what?
    interests = assign_interests(trace.nodes, distribution, seed=11)
    top_key = distribution.top(1)[0][0]
    fans = consumers_of(interests, top_key)
    print(f"{len(fans)} of {trace.num_nodes} attendees subscribe to "
          f"{top_key!r} — the hottest trend\n")

    # The Fig. 7 sweep at three TTLs.
    ttls = (30.0, 300.0, 1000.0)
    config = ExperimentConfig(min_rate_per_s=1 / 3600.0)
    sweep = ttl_sweep(trace, ttl_values_min=ttls, base_config=config)
    for metric, label in [
        ("delivery_ratio", "Delivery ratio"),
        ("delay_min", "Delay (minutes)"),
        ("forwardings", "Forwardings per delivered message"),
    ]:
        print(series_table("TTL(min)", ttls, figure_series(sweep, metric),
                           title=label))
        print()

    bsub = sweep["B-SUB"][-1]
    print(f"B-SUB used DF = {bsub.decay_factor_per_min:.3f}/min (Eq. 5, "
          f"τ = TTL) and elected {bsub.broker_fraction:.0%} of nodes as "
          "brokers.")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.05)
