#!/usr/bin/env python
"""Quickstart: the TCBF in five minutes, then a tiny pub-sub run.

Walks through the paper's core data structure — insertion, temporal
decay, A-/M-merge, existential and preferential queries — then a
minimal end-to-end B-SUB simulation on a synthetic trace, and finally
the same run instrumented with the observability layer (event trace +
metrics registry).

Run:  python examples/quickstart.py
"""

from repro.core import HashFamily, TemporalCountingBloomFilter
from repro.experiments import ExperimentConfig, run_experiment
from repro.obs import Observability
from repro.traces import haggle_like


def tcbf_tour():
    print("=== 1. The Temporal Counting Bloom Filter ===\n")
    family = HashFamily(num_hashes=4, num_bits=256)  # the paper's geometry

    # A consumer's genuine filter: interests with initial counter C = 50.
    genuine = TemporalCountingBloomFilter(family=family, initial_value=50)
    genuine.insert("NewMoon")
    genuine.insert("openwebawards")
    print(f"genuine filter: {genuine}")
    print(f"  'NewMoon' in filter?        {'NewMoon' in genuine}")
    print(f"  'ModernWarfare2' in filter? {'ModernWarfare2' in genuine}")

    # A broker's relay filter decays at DF = 1 per time unit.
    relay = TemporalCountingBloomFilter(
        family=family, initial_value=50, decay_factor=1.0
    )
    relay.a_merge(genuine)  # consumer announces interests -> A-merge
    print(f"\nrelay after A-merge: min counter for 'NewMoon' = "
          f"{relay.min_counter('NewMoon'):.0f}")

    relay.a_merge(genuine)  # meeting again *reinforces* the counters
    print(f"relay after reinforcement:                       = "
          f"{relay.min_counter('NewMoon'):.0f}")

    relay.advance(60.0)  # one minute of decay at DF = 1/s
    print(f"relay one minute later:                          = "
          f"{relay.min_counter('NewMoon'):.0f}")

    relay.advance(100.0)  # interests not refreshed are forgotten
    print(f"'NewMoon' still known at t=100? {'NewMoon' in relay}")

    # Preferential query: which broker should carry a 'NewMoon' message?
    close_broker = TemporalCountingBloomFilter(family=family, initial_value=50)
    far_broker = TemporalCountingBloomFilter(family=family, initial_value=50)
    close_broker.a_merge(genuine)
    close_broker.a_merge(genuine)  # meets the consumer often
    far_broker.a_merge(genuine)    # met the consumer once
    preference = close_broker.preference("NewMoon", far_broker)
    print(f"\npreference of the close broker over the far one: "
          f"{preference:+.0f}  (positive -> forward to it)")


def mini_simulation():
    print("\n=== 2. A complete B-SUB run ===\n")
    trace = haggle_like(scale=0.05, seed=1)  # 79 nodes, ~3.4k contacts
    print(f"trace: {trace}")
    config = ExperimentConfig(ttl_min=600.0, min_rate_per_s=1 / 3600.0)
    for protocol in ("PUSH", "B-SUB", "PULL"):
        result = run_experiment(trace, protocol, config)
        s = result.summary
        print(
            f"  {protocol:6s}  delivery={s.delivery_ratio:5.3f}  "
            f"delay={s.mean_delay_min:6.1f} min  "
            f"forwardings/delivered={s.forwardings_per_delivered:5.2f}  "
            f"FPR={s.false_positive_ratio:.4f}"
        )
    print("\nPUSH floods (best delivery, highest cost); PULL is one-hop "
          "(cheapest, worst delivery);\nB-SUB sits close to PUSH on "
          "delivery at a fraction of the forwarding cost.")


def traced_run():
    print("\n=== 3. The same run, instrumented ===\n")
    # Tiny 32-bit filters make Bloom false positives — and hence
    # `false_injection` events — actually occur at this scale.
    trace = haggle_like(scale=0.01, seed=3)
    config = ExperimentConfig(
        ttl_min=120.0, min_rate_per_s=1 / 1800.0, num_bits=32, num_hashes=2
    )
    obs = Observability.enabled()
    run_experiment(trace, "B-SUB", config, obs=obs)

    counts = obs.tracer.counts()
    print("events per type:")
    for name in sorted(counts):
        print(f"  {name:16s} {counts[name]:6d}")
    print(f"\ntrace digest (pins the run byte-for-byte): "
          f"{obs.tracer.digest()[:16]}…")

    # Every M-merge in the run respects the Fig. 6 invariant: the
    # maximum merge never amplifies counters above either input.
    for event in obs.tracer.events_of("m_merge"):
        f = event.fields
        assert f["max_after"] <= max(f["max_before"], f["max_peer"]) + 1e-9
    print("checked: no M-merge amplified a counter (Fig. 6 invariant)")

    print("\nwhere the time went:")
    for name, seconds, _entries in obs.timers.summary():
        print(f"  {name:10s} {seconds:6.2f} s")
    # obs.tracer.write_jsonl("run.trace.jsonl") and
    # obs.registry.write_json("run.metrics.json") persist the run;
    # `python -m repro run --trace-out … --metrics-out …` does the
    # same from the command line.


if __name__ == "__main__":
    tcbf_tour()
    mini_simulation()
    traced_run()
