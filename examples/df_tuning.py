#!/usr/bin/env python
"""Tuning the decaying factor: the analysis of Sec. VI in practice.

The DF is B-SUB's central knob.  This example:

1. evaluates the closed forms (Eq. 1-6): FPR, fill ratio, the expected
   accidental counter increment, and the Eq. 5 DF rule;
2. solves the Eq. 9-10 optimal multi-filter allocation for a memory
   budget;
3. runs a miniature Fig. 9 sweep to show the DF's delivery/overhead
   trade-off live.

Run:  python examples/df_tuning.py
"""

from repro.core import (
    expected_min_collisions,
    expected_unique_keys,
    false_positive_rate,
    fill_ratio,
    plan_allocation,
    recommended_decay_factor,
)
from repro.experiments import ExperimentConfig, df_sweep, format_table
from repro.traces import haggle_like
from repro.workload import twitter_trends_2009


def closed_forms():
    print("=== Eq. 1-6: the filter analysis at the paper's settings ===\n")
    m, k = 256, 4
    rows = []
    for n in (5, 10, 20, 38, 60):
        rows.append([
            n,
            fill_ratio(n, m, k),
            false_positive_rate(n, m, k),
            expected_min_collisions(n, m, k),
        ])
    print(format_table(
        ["keys n", "fill ratio", "FPR (Eq. 1)", "E[min collisions] (Eq. 4)"],
        rows, title=f"m = {m} bits, k = {k} hashes",
    ))
    print("\nworst case for the 38-key workload: "
          f"FPR = {false_positive_rate(38, m, k):.4f} (paper: 0.04)\n")

    # Eq. 5: the DF for a 10-hour delay limit.
    dist = twitter_trends_2009()
    collected = 40  # nodes met within τ (measured from the trace online)
    unique = expected_unique_keys(collected, weights=dist.weights)
    df = recommended_decay_factor(
        delay_limit=600.0,  # τ = 10 h in minutes
        initial_value=50.0,
        num_keys=round(unique),
        num_bits=m,
        num_hashes=k,
    )
    print(f"Eq. 6: {collected} collected interests ≈ {unique:.1f} unique keys")
    print(f"Eq. 5: DF(τ=10 h) = {df:.3f} per minute  (paper computes 0.138)\n")


def allocation():
    print("=== Eq. 9-10: optimal TCBF allocation under a memory bound ===\n")
    rows = []
    for bound in (400, 800, 1600):
        plan = plan_allocation(total_keys=150, memory_bound_bytes=bound)
        rows.append([
            bound, plan.num_filters, f"{plan.fill_ratio_threshold:.3f}",
            f"{plan.joint_fpr:.4f}", f"{plan.memory_bytes:.0f}",
        ])
    print(format_table(
        ["memory bound (B)", "filters h*", "threshold F_t", "joint FPR",
         "memory used (B)"],
        rows, title="150 collected keys, m = 256, k = 4",
    ))
    print()


def live_sweep():
    print("=== Fig. 9 in miniature: the DF trade-off, live ===\n")
    trace = haggle_like(scale=0.04, seed=3)
    config = ExperimentConfig(min_rate_per_s=1 / 3600.0)
    results = df_sweep(
        trace, df_values_per_min=(0.0, 0.25, 1.0, 2.0),
        ttl_min=600.0, base_config=config,
    )
    rows = [
        [
            r.decay_factor_per_min,
            f"{r.summary.delivery_ratio:.3f}",
            f"{r.summary.forwardings_per_delivered:.2f}",
            f"{r.summary.false_positive_ratio:.4f}",
        ]
        for r in results
    ]
    print(format_table(
        ["DF (/min)", "delivery ratio", "fwd/delivered", "FPR"],
        rows, title=f"B-SUB on {trace.name}, TTL = 10 h",
    ))
    print("\nhigher DF -> smaller interest-propagation scope -> fewer "
          "forwardings and lower FPR,\nat the price of delivery ratio — "
          "exactly the Sec. VI-B trade-off.")


if __name__ == "__main__":
    closed_forms()
    allocation()
    live_sweep()
