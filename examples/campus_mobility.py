#!/usr/bin/env python
"""Pub-sub over simulated mobility, with an energy budget.

Instead of replaying a recorded contact trace, this example *generates*
one from first principles: students walking a campus quad under a
community-biased waypoint model (an HCMM-style simulation), Bluetooth
contacts extracted from their positions.  It then runs all three
protocols over the resulting human network and compares them on the
metric batteries actually care about — radio energy per delivered
message — plus the broker hotspot ratio B-SUB's two-tier design trades
for that efficiency.

Run:  python examples/campus_mobility.py
"""

from repro.dtn import BLUETOOTH_CLASS2_MODEL
from repro.experiments import ExperimentConfig, format_table, run_experiment
from repro.traces import MobilityConfig, compute_stats, simulate_mobility


def main():
    print("=== 1. Simulate campus mobility ===\n")
    config = MobilityConfig(
        num_nodes=40,
        duration_s=8 * 3600.0,     # one campus day
        area_m=400.0,
        grid=4,
        num_communities=4,         # four departments
        home_bias=0.85,
        tx_range_m=10.0,           # Bluetooth
        seed=2,
        name="campus-day",
    )
    trace = simulate_mobility(config)
    stats = compute_stats(trace)
    print(f"{trace}")
    print(f"  mean contact duration: {stats.mean_contact_duration_s:.0f} s   "
          f"mean degree: {stats.mean_degree:.1f}   "
          f"median inter-contact: {stats.median_inter_contact_s / 60:.0f} min\n")

    print("=== 2. Run the protocols ===\n")
    experiment = ExperimentConfig(
        ttl_min=120.0,               # two-hour message usefulness
        min_rate_per_s=1 / 900.0,    # one message per 15 min for the
                                     # least central student
    )
    rows = []
    for protocol in ("PUSH", "B-SUB", "PULL"):
        result = run_experiment(trace, protocol, experiment)
        energy = BLUETOOTH_CLASS2_MODEL.evaluate(result.engine)
        summary = result.summary
        rows.append(
            [
                protocol,
                summary.delivery_ratio,
                summary.mean_delay_min,
                summary.forwardings_per_delivered,
                energy.data_j,
                energy.energy_per_delivery_j(summary.num_intended_deliveries)
                * 1e3,
                energy.hotspot_ratio(),
            ]
        )
    print(format_table(
        ["protocol", "delivery", "delay (min)", "fwd/delivered",
         "radio data (J)", "mJ/delivery", "hotspot"],
        rows,
        title="One campus day, 40 students, Bluetooth energy model",
    ))
    print(
        "\nPUSH buys its delivery ratio with an order of magnitude more "
        "radio energy;\nB-SUB concentrates its (much smaller) bill on the "
        "elected brokers — the\nhotspot ratio is the price of the two-tier "
        "design the paper argues for."
    )


if __name__ == "__main__":
    main()
