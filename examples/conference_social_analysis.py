#!/usr/bin/env python
"""Social-structure analysis of a human contact network.

B-SUB's broker allocation bets that human networks have exploitable
social structure: hubs (socially active nodes) and communities.  This
example builds the contact graph of a synthetic conference trace,
measures centrality and community structure, runs the Sec. V-B broker
election, and checks the bet: do the elected brokers actually sit on
the social hubs?

Run:  python examples/conference_social_analysis.py
"""

from repro.experiments import format_table
from repro.pubsub import BrokerElection
from repro.social import (
    ContactGraph,
    community_sets,
    degree_centrality,
    label_propagation,
    modularity,
    normalised,
)
from repro.traces import compute_stats, haggle_like, mit_reality_like


def main():
    trace = haggle_like(scale=0.1, seed=7)
    stats = compute_stats(trace)
    print(f"trace: {trace}")
    print(f"  contacts/day: {stats.contacts_per_day:.0f}   "
          f"mean degree: {stats.mean_degree:.1f}   "
          f"median inter-contact: {stats.median_inter_contact_s / 3600:.1f} h\n")

    graph = ContactGraph.from_trace(trace)

    # -- centrality: who are the social hubs? --------------------------------
    centrality = degree_centrality(graph)
    ranked = sorted(centrality, key=lambda n: -centrality[n])
    rows = [[n, centrality[n], normalised(centrality)[n]] for n in ranked[:8]]
    print(format_table(["node", "degree", "normalised"], rows,
                       title="Top-8 nodes by degree centrality"))

    # -- communities ----------------------------------------------------------
    # A 3-day conference contact graph is nearly complete (everyone
    # eventually sights everyone), so detect communities on the sparser
    # campus-style trace where relationship structure survives.
    campus = mit_reality_like(scale=0.3, seed=7)
    campus_graph = ContactGraph.from_trace(campus)
    labels = label_propagation(campus_graph, seed=0)
    groups = community_sets(labels)
    q = modularity(campus_graph, labels)
    print(f"\non {campus.name}: label propagation found {len(groups)} "
          f"communities (modularity Q = {q:.3f})")
    for i, group in enumerate(sorted(groups, key=len, reverse=True)[:5]):
        print(f"  community {i}: {len(group)} members")

    # -- broker election (Sec. V-B) -------------------------------------------
    election = BrokerElection(trace.nodes, lower_bound=3, upper_bound=5,
                              window_s=5 * 3600.0)
    for contact in trace:
        election.on_contact(contact.a, contact.b, contact.start)
    brokers = election.brokers()
    print(f"\nelection result: {len(brokers)}/{trace.num_nodes} brokers "
          f"({election.broker_fraction():.0%}); "
          f"{election.promotions} promotions, {election.demotions} demotions")

    # Do brokers sit on the hubs?  Compare mean centrality.
    broker_centrality = sum(centrality[b] for b in brokers) / len(brokers)
    user_nodes = [n for n in trace.nodes if n not in brokers]
    user_centrality = sum(centrality[u] for u in user_nodes) / len(user_nodes)
    print(f"mean degree of brokers: {broker_centrality:.1f}   "
          f"of normal users: {user_centrality:.1f}")
    if broker_centrality > user_centrality:
        print("-> the election selects socially-active nodes, as designed")
    else:
        print("-> the election did NOT favour hubs on this trace")


if __name__ == "__main__":
    main()
