#!/usr/bin/env python
"""Regenerate tests/obs/data/mini_fig7_analysis.json.

Run after an *intentional* change to the trace schema, the analyzer,
or the mini Fig. 7 scenario:

    PYTHONPATH=src python scripts/regen_analysis_snapshot.py

The snapshot is what the CI analyze-smoke step and
tests/obs/test_analyze.py compare against, so regenerating it is an
explicit, reviewable act — attribution drift must never slip through
silently.
"""

import os
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))
sys.path.insert(0, REPO)

from repro.obs import Observability, analyze_trace  # noqa: E402

from tests.obs.conftest import run_mini_fig7  # noqa: E402

SNAPSHOT = os.path.join(REPO, "tests", "obs", "data",
                        "mini_fig7_analysis.json")


def main() -> int:
    obs = Observability.enabled()
    run_mini_fig7(obs)
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = os.path.join(tmp, "mini.trace.jsonl")
        obs.tracer.write_jsonl(trace_path)
        analysis = analyze_trace(trace_path)
    os.makedirs(os.path.dirname(SNAPSHOT), exist_ok=True)
    analysis.write_json(SNAPSHOT)
    print(f"wrote {SNAPSHOT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
