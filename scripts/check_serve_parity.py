#!/usr/bin/env python
"""CI gate: live broker soak + online/offline observability parity.

Starts a broker in-process (trace streaming to a temp file), drives it
with a deterministic multi-session load over real sockets, then checks
the PR's acceptance bar end to end:

1. every session connects, **zero** frame decode errors anywhere;
2. the broker shuts down cleanly (complete trace, ``sim_end`` emitted);
3. the Prometheus scrape is non-empty while the soak is running;
4. ``analyze_trace`` over the broker's emitted schema-v2 trace
   reproduces the broker's live registry counters **exactly** —
   created messages, intended pairs, direct forwards, and total /
   intended / false deliveries.

With ``--workers N`` (N > 1) the soak runs against the multi-process
SO_REUSEPORT fleet instead: the gate then checks that ``analyze_trace``
over the deterministically *merged* shard trace equals the **sum** of
the workers' parity counters — the fleet-wide version of the same
online/offline contract.

With ``--live`` a :class:`repro.obs.live.LiveTailer` additionally
follows the growing trace shard(s) *while the soak runs* — the online
observability path — with periodic ``verify_parity`` checkpoints, and
at shutdown the tailer's rolling counters must exactly equal the
offline analyzer's totals (check 5).

Usage::

    PYTHONPATH=src python scripts/check_serve_parity.py              # quick
    PYTHONPATH=src python scripts/check_serve_parity.py --sessions 1000 \
        --duration 30                                                # soak
    PYTHONPATH=src python scripts/check_serve_parity.py --workers 2  # fleet
    PYTHONPATH=src python scripts/check_serve_parity.py --workers 2 \
        --live                                          # fleet + live tailer

Exit code 0 = all checks green.
"""

import argparse
import asyncio
import sys
import tempfile
import threading
from pathlib import Path

from repro.obs.analyze import analyze_trace
from repro.obs.live import LiveTailer, follow_merged_traces
from repro.obs.registry import MetricsRegistry
from repro.serve import (
    BrokerFleet,
    BrokerServer,
    LoadDriver,
    LoadSpec,
    ServeSpec,
)


class LiveTail:
    """A :class:`LiveTailer` pumped from a follower thread.

    Tails every trace shard while the broker is still writing it,
    feeding the tailer in deterministic merge order.  The thread ends
    on its own once every shard has emitted ``sim_end`` (i.e. shortly
    after ``broker.stop()``); ``finish()`` joins it and surfaces any
    exception — including :class:`repro.obs.live.ParityError` from the
    periodic checkpoints — to the caller.
    """

    def __init__(self, shard_paths, checkpoint_every: int = 2000):
        self.shard_paths = [str(p) for p in shard_paths]
        self.tailer = LiveTailer(
            source_paths=self.shard_paths,
            checkpoint_every=checkpoint_every,
        )
        self.error = None
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="live-tail", daemon=True
        )
        self._thread.start()

    def _run(self):
        try:
            pairs = follow_merged_traces(
                self.shard_paths,
                follow=True,
                poll_interval_s=0.05,
                should_stop=self._stop.is_set,
            )
            for shard, event in pairs:
                self.tailer.feed(event, shard=shard)
        except Exception as error:  # surfaced via finish()
            self.error = error

    def finish(self, timeout_s: float = 30.0) -> None:
        """Join the follower; raise if it failed or never drained."""
        self._thread.join(timeout_s)
        if self._thread.is_alive():
            # A shard never emitted sim_end — unstick the thread and
            # report the hang rather than deadlocking CI.
            self._stop.set()
            self._thread.join(5.0)
            raise RuntimeError(
                "live tailer did not drain the trace shards within "
                f"{timeout_s}s (missing sim_end?)"
            )
        if self.error is not None:
            raise self.error
        # Final explicit checkpoint over the now-quiescent shards, so
        # even a soak too short for the periodic threshold still gets
        # at least one full prefix re-read + comparison.
        self.tailer.verify_parity()


async def scrape(host: str, port: int) -> str:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(b"GET /metrics HTTP/1.1\r\nHost: ci\r\n\r\n")
    await writer.drain()
    response = (await reader.read()).decode()
    writer.close()
    return response


async def soak(
    sessions: int, duration: float, trace_path: str, workers: int,
    registry: MetricsRegistry, live: bool = False,
):
    spec = ServeSpec(
        port=0, metrics_port=0, trace_path=trace_path,
        idle_timeout_s=duration + 60, workers=workers,
    )
    if workers > 1:
        broker = BrokerFleet(spec, registry=registry)
    else:
        broker = BrokerServer(spec, registry=registry)
    await broker.start()
    tail = None
    if live:
        if workers > 1:
            shard_paths = [f"{trace_path}.w{i}" for i in range(workers)]
        else:
            shard_paths = [trace_path]
        tail = LiveTail(shard_paths)
    driver = LoadDriver(
        LoadSpec(
            port=broker.port,
            sessions=sessions,
            publisher_fraction=0.1,
            duration_s=duration,
            publish_rate_per_s=1.0,
            interests_per_node=2,
            arrival="conference",
            seed=13,
        )
    )
    load_task = asyncio.ensure_future(driver.run())
    # Scrape mid-soak: the endpoint must serve while under load.
    await asyncio.sleep(duration / 2)
    prom = await scrape(spec.host, broker.metrics_port)
    report = await load_task
    summary = await broker.stop()
    if tail is not None:
        # Joins once every shard's sim_end has been consumed; raises on
        # a hung shard or any mid-soak verify_parity checkpoint break.
        await asyncio.get_running_loop().run_in_executor(None, tail.finish)
    if workers > 1:
        parity = summary["parity"]  # sum of the workers' counters
    else:
        parity = broker.core.parity_counters()
    return report, summary, prom, parity, tail


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=200)
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument("--workers", type=int, default=1,
                        help="run the SO_REUSEPORT fleet with N workers "
                             "(default 1 = single process)")
    parser.add_argument("--live", action="store_true",
                        help="also tail the growing trace with a "
                             "LiveTailer and gate live == offline totals")
    args = parser.parse_args(argv)

    failures = []
    registry = MetricsRegistry()
    with tempfile.TemporaryDirectory(prefix="serve-parity-") as tmp:
        trace_path = str(Path(tmp) / "broker_trace.jsonl")
        report, summary, prom, parity, tail = asyncio.run(
            soak(args.sessions, args.duration, trace_path,
                 args.workers, registry, live=args.live)
        )

        print(f"sessions: {report.sessions_connected}/{args.sessions} "
              f"(failures {report.connect_failures})")
        print(f"published: {report.messages_published}, delivered "
              f"{report.deliveries_received}, "
              f"p95 {report.latency_p95_ms:.2f} ms")
        print(f"broker summary: {summary}")

        if report.sessions_connected != args.sessions:
            failures.append(
                f"only {report.sessions_connected}/{args.sessions} "
                f"sessions connected"
            )
        if report.decode_errors:
            failures.append(
                f"{report.decode_errors} client-side decode errors"
            )
        broker_errors = registry.counter("serve_decode_errors_total").value
        if broker_errors:
            failures.append(f"{broker_errors} broker-side decode errors")
        if not prom.startswith("HTTP/1.1 200") or "serve_" not in prom:
            failures.append("Prometheus scrape empty or not 200")
        if report.messages_published == 0:
            failures.append("no messages published (soak misconfigured)")

        analysis = analyze_trace(trace_path)
        offline = {
            "messages_created": analysis.messages["created"],
            "intended_pairs": analysis.messages["intended_pairs"],
            "forwards_direct": analysis.forwards["direct"],
            "deliveries_total": analysis.deliveries["total"],
            "deliveries_intended": analysis.deliveries["intended"],
            "deliveries_false": analysis.deliveries["false"],
        }
        for key, live in sorted(parity.items()):
            status = "==" if offline[key] == live else "!="
            print(f"parity {key}: live {live} {status} offline {offline[key]}")
            if offline[key] != live:
                failures.append(
                    f"parity break on {key}: live {live}, "
                    f"offline {offline[key]}"
                )

        if tail is not None:
            tailed = tail.tailer.parity_counters()
            checks = tail.tailer.parity_checks
            print(f"live tailer: {tail.tailer.seen_events} events tailed, "
                  f"{checks} mid-soak parity checkpoints")
            for key, value in sorted(tailed.items()):
                status = "==" if offline[key] == value else "!="
                print(f"tailer {key}: live {value} {status} "
                      f"offline {offline[key]}")
                if offline[key] != value:
                    failures.append(
                        f"live tailer break on {key}: tailed {value}, "
                        f"offline {offline[key]}"
                    )
            if checks == 0:
                failures.append(
                    "live tailer ran zero parity checkpoints "
                    "(soak too short for --live gate)"
                )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("parity check: all green")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
