#!/usr/bin/env python
"""CI gate: live broker soak + online/offline observability parity.

Starts a broker in-process (trace streaming to a temp file), drives it
with a deterministic multi-session load over real sockets, then checks
the PR's acceptance bar end to end:

1. every session connects, **zero** frame decode errors anywhere;
2. the broker shuts down cleanly (complete trace, ``sim_end`` emitted);
3. the Prometheus scrape is non-empty while the soak is running;
4. ``analyze_trace`` over the broker's emitted schema-v2 trace
   reproduces the broker's live registry counters **exactly** —
   created messages, intended pairs, direct forwards, and total /
   intended / false deliveries.

With ``--workers N`` (N > 1) the soak runs against the multi-process
SO_REUSEPORT fleet instead: the gate then checks that ``analyze_trace``
over the deterministically *merged* shard trace equals the **sum** of
the workers' parity counters — the fleet-wide version of the same
online/offline contract.

Usage::

    PYTHONPATH=src python scripts/check_serve_parity.py              # quick
    PYTHONPATH=src python scripts/check_serve_parity.py --sessions 1000 \
        --duration 30                                                # soak
    PYTHONPATH=src python scripts/check_serve_parity.py --workers 2  # fleet

Exit code 0 = all checks green.
"""

import argparse
import asyncio
import sys
import tempfile
from pathlib import Path

from repro.obs.analyze import analyze_trace
from repro.obs.registry import MetricsRegistry
from repro.serve import (
    BrokerFleet,
    BrokerServer,
    LoadDriver,
    LoadSpec,
    ServeSpec,
)


async def scrape(host: str, port: int) -> str:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(b"GET /metrics HTTP/1.1\r\nHost: ci\r\n\r\n")
    await writer.drain()
    response = (await reader.read()).decode()
    writer.close()
    return response


async def soak(
    sessions: int, duration: float, trace_path: str, workers: int,
    registry: MetricsRegistry,
):
    spec = ServeSpec(
        port=0, metrics_port=0, trace_path=trace_path,
        idle_timeout_s=duration + 60, workers=workers,
    )
    if workers > 1:
        broker = BrokerFleet(spec, registry=registry)
    else:
        broker = BrokerServer(spec, registry=registry)
    await broker.start()
    driver = LoadDriver(
        LoadSpec(
            port=broker.port,
            sessions=sessions,
            publisher_fraction=0.1,
            duration_s=duration,
            publish_rate_per_s=1.0,
            interests_per_node=2,
            arrival="conference",
            seed=13,
        )
    )
    load_task = asyncio.ensure_future(driver.run())
    # Scrape mid-soak: the endpoint must serve while under load.
    await asyncio.sleep(duration / 2)
    prom = await scrape(spec.host, broker.metrics_port)
    report = await load_task
    summary = await broker.stop()
    if workers > 1:
        parity = summary["parity"]  # sum of the workers' counters
    else:
        parity = broker.core.parity_counters()
    return report, summary, prom, parity


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=200)
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument("--workers", type=int, default=1,
                        help="run the SO_REUSEPORT fleet with N workers "
                             "(default 1 = single process)")
    args = parser.parse_args(argv)

    failures = []
    registry = MetricsRegistry()
    with tempfile.TemporaryDirectory(prefix="serve-parity-") as tmp:
        trace_path = str(Path(tmp) / "broker_trace.jsonl")
        report, summary, prom, parity = asyncio.run(
            soak(args.sessions, args.duration, trace_path,
                 args.workers, registry)
        )

        print(f"sessions: {report.sessions_connected}/{args.sessions} "
              f"(failures {report.connect_failures})")
        print(f"published: {report.messages_published}, delivered "
              f"{report.deliveries_received}, "
              f"p95 {report.latency_p95_ms:.2f} ms")
        print(f"broker summary: {summary}")

        if report.sessions_connected != args.sessions:
            failures.append(
                f"only {report.sessions_connected}/{args.sessions} "
                f"sessions connected"
            )
        if report.decode_errors:
            failures.append(
                f"{report.decode_errors} client-side decode errors"
            )
        broker_errors = registry.counter("serve_decode_errors_total").value
        if broker_errors:
            failures.append(f"{broker_errors} broker-side decode errors")
        if not prom.startswith("HTTP/1.1 200") or "serve_" not in prom:
            failures.append("Prometheus scrape empty or not 200")
        if report.messages_published == 0:
            failures.append("no messages published (soak misconfigured)")

        analysis = analyze_trace(trace_path)
        offline = {
            "messages_created": analysis.messages["created"],
            "intended_pairs": analysis.messages["intended_pairs"],
            "forwards_direct": analysis.forwards["direct"],
            "deliveries_total": analysis.deliveries["total"],
            "deliveries_intended": analysis.deliveries["intended"],
            "deliveries_false": analysis.deliveries["false"],
        }
        for key, live in sorted(parity.items()):
            status = "==" if offline[key] == live else "!="
            print(f"parity {key}: live {live} {status} offline {offline[key]}")
            if offline[key] != live:
                failures.append(
                    f"parity break on {key}: live {live}, "
                    f"offline {offline[key]}"
                )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("parity check: all green")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
